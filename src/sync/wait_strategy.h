#pragma once
// WaitStrategy: how a thread waits for a synchronization word to change.
//
// Every parking point of the ORWL core (handle grant waits, control-thread
// event pops, the epoch barrier) funnels through sync::wait_while_equal
// (waiter.h), and this strategy decides what the calling thread does while
// the word still holds the old value:
//
//   block            — park immediately on the futex behind
//                      std::atomic::wait; the classic condvar-like shape,
//                      cheapest when waits are long.
//   spin_then_park   — spin a bounded number of rounds, then park. The
//                      first kRelaxRounds are pure cpu-relax (a wait that
//                      resolves there costs no syscall at all); the
//                      remaining rounds sched-yield, trading the futex
//                      park/wake pair for cooperative rescheduling — the
//                      winning move on oversubscribed or single-PU hosts,
//                      where the thread that will flip the word needs this
//                      core to run.
//   spin             — never park; cpu-relax bursts with periodic yields.
//                      Lowest wake latency, burns a PU; benchmarking only.
//
// The strategy is plumbed from Program::wait_strategy() / RuntimeOptions
// down to every waiter, and swept by bench/micro_orwl_overhead and
// tools/orwl_bench --wait-strategy.

#include <cstdint>
#include <string>

namespace orwl::sync {

enum class WaitMode : std::uint8_t {
  Block,         ///< park immediately (futex wait)
  SpinThenPark,  ///< bounded spin (relax, then yield), then park
  Spin,          ///< spin forever (relax bursts + periodic yields)
  Auto,          ///< spin-then-park with a self-tuned spin budget
};

struct WaitStrategy {
  WaitMode mode = WaitMode::Block;
  /// Spin rounds before parking (SpinThenPark, and the fallback for Auto
  /// waiters nobody tunes). The first kRelaxRounds of them are pure
  /// cpu-relax; the rest yield the CPU.
  int spins = 256;

  /// Spin rounds burned as pure cpu-relax before the loop starts
  /// yielding — yields are what make spinning safe (and fast) on
  /// oversubscribed or single-PU hosts, where the thread that will flip
  /// the word needs this core to run.
  static constexpr int kRelaxRounds = 16;

  [[nodiscard]] static constexpr WaitStrategy block() {
    return {WaitMode::Block, 0};
  }
  [[nodiscard]] static constexpr WaitStrategy spin_then_park(
      int spins = 256) {
    return {WaitMode::SpinThenPark, spins};
  }
  [[nodiscard]] static constexpr WaitStrategy spin() {
    return {WaitMode::Spin, 0};
  }
  /// Self-tuning spin-then-park: waiters with an AdaptiveWaitBudget
  /// (sync/adaptive_wait.h) re-read their spin budget every wait; the
  /// runtime re-derives budgets from the per-handle wait-round histograms
  /// at epoch boundaries. Untuned parking points treat it as
  /// spin_then_park(spins).
  [[nodiscard]] static constexpr WaitStrategy spin_then_park_auto() {
    return {WaitMode::Auto, 256};
  }

  friend bool operator==(const WaitStrategy& a,
                         const WaitStrategy& b) = default;
};

/// "block", "spin_then_park(256)", "spin", "spin_then_park(auto)".
std::string to_string(const WaitStrategy& ws);

/// Parse "block" | "spin" | "spin_then_park" | "spin_then_park(N)" |
/// "spin_then_park:N" | "spin_then_park(auto)" | "auto"
/// (case-insensitive). Throws ContractError naming the accepted forms on
/// anything else.
WaitStrategy parse_wait_strategy(const std::string& text);

}  // namespace orwl::sync
