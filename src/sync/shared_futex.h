#pragma once
// Process-SHARED futex waits for words living in MAP_SHARED pages.
//
// The core waiter (sync/waiter.h) parks through C++20 std::atomic::wait,
// which libstdc++ implements with PRIVATE futexes — matched by (mm,
// address), so a wake issued in another process NEVER reaches a waiter
// parked here, even when both map the same physical page. Every
// cross-address-space parking point (the ipc:: grant rings, the channel
// state words) must therefore go through this header instead: raw
// SYS_futex without FUTEX_PRIVATE_FLAG, matched by the underlying page.
// tests/sync_test.cpp guards exactly this assumption with a fork-based
// case.
//
// Contract mirrors waiter.h, with two deliberate differences:
//  * the word must be a 32-bit atomic in shared memory (futexes are
//    32-bit; std::atomic<uint32_t> is address-free on every supported
//    target, asserted below);
//  * every wait takes a timeout. Cross-process peers can die without
//    unparking anyone — kernel-side robust wakeup does not exist for
//    plain futex words — so an unbounded shared wait is a hang waiting to
//    happen. Callers poll peer liveness between expiries (ipc::Channel).
//
// On non-Linux hosts the park degrades to a yield loop with the same
// timeout semantics (correct, just not cheap); shared_futex_available()
// reports which flavour is live.

#include <atomic>
#include <cstdint>

#include "sync/wait_strategy.h"

namespace orwl::sync {

static_assert(std::atomic<std::uint32_t>::is_always_lock_free,
              "shared-memory words must be address-free atomics");

/// True when parks use a real process-shared futex (Linux); false when the
/// fallback yield loop is in force.
[[nodiscard]] bool shared_futex_available() noexcept;

/// Outcome of a bounded shared wait.
enum class SharedWait : std::uint8_t {
  Changed,   ///< the word no longer holds the old value
  TimedOut,  ///< the deadline passed with the word unchanged
};

/// Park until `word != old` or `timeout_ns` elapses. Absorbs spurious and
/// EINTR wakes. The waker must store the new value (release) and then call
/// shared_futex_wake_all — exactly the waiter.h discipline, shared flavour.
SharedWait shared_futex_wait(const std::atomic<std::uint32_t>& word,
                             std::uint32_t old,
                             std::int64_t timeout_ns) noexcept;

/// Wake every process parked on `word` (FUTEX_WAKE, shared).
void shared_futex_wake_all(std::atomic<std::uint32_t>& word) noexcept;

/// Bounded cross-process wait_while_equal: spin per the strategy, then
/// park on the shared futex, re-arming until `timeout_ns` is spent.
/// Returns the first differing value (acquire ordering, same publication
/// contract as waiter.h) or TimedOut with the word unchanged. `out` (may
/// be null) receives the last observed value either way.
SharedWait wait_while_equal_shared(const std::atomic<std::uint32_t>& word,
                                   std::uint32_t old, const WaitStrategy& ws,
                                   std::int64_t timeout_ns,
                                   std::uint32_t* out = nullptr) noexcept;

}  // namespace orwl::sync
