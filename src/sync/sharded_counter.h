#pragma once
// ShardedCounter: a monotonically increasing counter whose increments land
// on one of several cache-line-padded shards, picked by the calling
// thread's dense index (support/thread.h). Hot paths (the grant
// announcement runs with a location queue lock held) pay one uncontended
// relaxed fetch_add with no cross-thread cache-line ping-pong; readers sum
// the shards at report/epoch boundaries — reads are rare, writes are the
// hot path.
//
// The sum is exact once the writing threads have quiesced (joined or
// barrier-parked). A read concurrent with writers is a consistent lower
// bound: every increment whose writer happened-before the read is
// included.

#include <atomic>
#include <cstdint>
#include <new>

#include "support/thread.h"

namespace orwl::sync {

/// Destructive-interference stride. Fixed at 64 (the x86/ARM line size)
/// instead of std::hardware_destructive_interference_size, whose value is
/// an ABI hazard gcc warns about (-Winterference-size).
inline constexpr std::size_t kCacheLine = 64;

class ShardedCounter {
 public:
  static constexpr int kShards = 16;  // power of two (mask indexing)

  ShardedCounter() = default;
  ShardedCounter(const ShardedCounter&) = delete;
  ShardedCounter& operator=(const ShardedCounter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    auto& shard = shards_[static_cast<std::size_t>(current_thread_index()) &
                          (kShards - 1)];
    // order: relaxed — counters carry no payload to publish; readers only
    // need a value that is exact after writers quiesced (see header note).
    shard.value.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum of all shards (the "flush": exact after writers quiesced).
  [[nodiscard]] std::uint64_t read() const noexcept {
    std::uint64_t total = 0;
    // order: relaxed — a concurrent read is a documented lower bound; the
    // exact-sum case is ordered by the joins/barrier that quiesce writers.
    for (const Shard& s : shards_)
      total += s.value.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(kCacheLine) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  Shard shards_[kShards];
};

}  // namespace orwl::sync
