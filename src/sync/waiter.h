#pragma once
// The spin-then-park waiter: every blocking point of the ORWL core waits
// for an atomic word to change through wait_while_equal below, so the
// whole runtime shares one parking discipline (sync/wait_strategy.h) and
// one memory-ordering contract.
//
// Contract:
//  * wait_while_equal(word, old, ws) returns the first value it observes
//    that differs from `old`, loading with acquire ordering — writes that
//    happened-before the releasing store are visible to the caller.
//  * The WAKER must store the new value (release ordering) and then call
//    notify_one/notify_all on the same atomic. A store without a notify
//    leaves parked waiters asleep (spinning waiters still notice).
//  * Spurious wakes are absorbed internally: the function only returns on
//    a genuine value change.
//
// The park itself is C++20 std::atomic::wait — a futex on Linux for
// 32-bit words, which is why the core's wait words (RequestState, event
// sequence numbers, the epoch generation) are 32-bit.

#include <atomic>
#include <cstdint>
#include <thread>

#include "sync/wait_strategy.h"

namespace orwl::sync {

/// Hint the CPU that we are busy-waiting (x86 PAUSE / ARM YIELD).
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  // order: seq_cst — compiler-only fence standing in for a pause
  // instruction on unknown ISAs; no hardware ordering implied.
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// How long a wait_while_equal call actually waited: spin rounds burnt and
/// futex parks taken. Filled by the counted overload below; the numbers
/// feed the per-handle wait-length histograms (obs/) that the self-tuning
/// wait work consumes.
struct WaitLength {
  std::uint32_t rounds = 0;  ///< spin-loop iterations before the word flipped
  std::uint32_t parks = 0;   ///< futex parks (0 = the spin phase sufficed)
};

/// Block the calling thread until `word != old` per the strategy; returns
/// the first differing value (acquire ordering). When `len` is non-null it
/// receives the observed wait length (a fast-path hit leaves it zeroed).
template <class T>
[[nodiscard]] T wait_while_equal(const std::atomic<T>& word, T old,
                                 const WaitStrategy& ws,
                                 WaitLength* len) noexcept {
  if (len != nullptr) *len = {};
  // order: acquire — every load here pairs with the waker's release store
  // so the writes that happened-before it are visible on return (the
  // contract above).
  T v = word.load(std::memory_order_acquire);
  if (v != old) return v;

  const auto spin_round = [&](int round) {
    // Early rounds burn cycles in-core; later rounds yield so the thread
    // that will flip the word can run — essential on oversubscribed and
    // single-PU hosts, where pure spinning would stall the waker for a
    // whole scheduler quantum.
    if (round < WaitStrategy::kRelaxRounds)
      cpu_relax();
    else
      std::this_thread::yield();
  };

  switch (ws.mode) {
    case WaitMode::Spin:
      for (int round = 0;; ++round) {
        // order: acquire — same pairing as the first load above.
        v = word.load(std::memory_order_acquire);
        if (v != old) {
          if (len != nullptr) len->rounds = static_cast<std::uint32_t>(round);
          return v;
        }
        spin_round(round);
      }
    case WaitMode::Auto:
      // Tuned waiters (orwl::Handle) substitute their AdaptiveWaitBudget
      // into ws.spins before calling; for everyone else Auto degrades to
      // the static spin_then_park budget below.
      [[fallthrough]];
    case WaitMode::SpinThenPark:
      for (int round = 0; round < ws.spins; ++round) {
        // order: acquire — same pairing as the first load above.
        v = word.load(std::memory_order_acquire);
        if (v != old) {
          if (len != nullptr) len->rounds = static_cast<std::uint32_t>(round);
          return v;
        }
        spin_round(round);
      }
      if (len != nullptr)
        len->rounds = static_cast<std::uint32_t>(ws.spins);
      [[fallthrough]];
    case WaitMode::Block:
      for (;;) {
        // order: acquire — same pairing as the first load above; the futex
        // wait re-checks with acquire so a wake cannot be consumed without
        // the release-store's effects.
        v = word.load(std::memory_order_acquire);
        if (v != old) return v;
        if (len != nullptr) ++len->parks;
        // order: acquire — the wait's own re-check load keeps the same
        // pairing as the loop load above.
        word.wait(old, std::memory_order_acquire);
      }
  }
  return v;  // unreachable
}

/// Uncounted form: identical semantics, no bookkeeping.
template <class T>
[[nodiscard]] T wait_while_equal(const std::atomic<T>& word, T old,
                                 const WaitStrategy& ws) noexcept {
  return wait_while_equal(word, old, ws, static_cast<WaitLength*>(nullptr));
}

/// Spin (relax, then yield) until `done()` returns true. For short-bounded
/// waits that cannot park — e.g. a ring-slot handoff where the flipping
/// thread is guaranteed to be running the protocol right now. The yield
/// phase keeps it live on oversubscribed and single-PU hosts.
template <class Pred>
void spin_until(Pred&& done) noexcept(noexcept(done())) {
  for (int round = 0; !done(); ++round) {
    if (round < WaitStrategy::kRelaxRounds)
      cpu_relax();
    else
      std::this_thread::yield();
  }
}

/// Wake waiters parked on `word`. The new value must already be stored
/// (release ordering) or the woken thread will just re-park.
template <class T>
void notify_one(std::atomic<T>& word) noexcept {
  word.notify_one();
}
template <class T>
void notify_all(std::atomic<T>& word) noexcept {
  word.notify_all();
}

}  // namespace orwl::sync
