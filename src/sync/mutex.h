#pragma once
// Annotated mutex wrappers: the thread-safety-analysis seam of the repo.
//
// sync::Mutex is a std::mutex carrying the clang `capability` attribute,
// and sync::LockGuard / sync::UniqueLock are the matching scoped
// capabilities, so fields declared ORWL_GUARDED_BY(mu_) are statically
// checked (-Wthread-safety) at every touch point. Use these instead of
// std::mutex / std::lock_guard anywhere in the library; plain std::mutex
// is invisible to the analysis.
//
// UniqueLock supports mid-scope unlock()/lock() (the epoch-hook pattern)
// and works as the lock argument of std::condition_variable_any::wait.

#include <mutex>

#include "support/thread_annotations.h"

namespace orwl::sync {

class ORWL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ORWL_ACQUIRE() { mu_.lock(); }
  void unlock() ORWL_RELEASE() { mu_.unlock(); }
  bool try_lock() ORWL_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// std::lock_guard with the scoped-capability annotation.
class ORWL_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) ORWL_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() ORWL_RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// std::unique_lock subset: scoped, but may be dropped and re-taken
/// mid-scope (epoch hooks run with the barrier mutex released) and is
/// accepted by std::condition_variable_any::wait.
class ORWL_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) ORWL_ACQUIRE(mu) : mu_(&mu), owned_(true) {
    mu_->lock();
  }
  ~UniqueLock() ORWL_RELEASE() {
    if (owned_) mu_->unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() ORWL_ACQUIRE() {
    mu_->lock();
    owned_ = true;
  }
  void unlock() ORWL_RELEASE() {
    mu_->unlock();
    owned_ = false;
  }
  [[nodiscard]] bool owns_lock() const { return owned_; }

 private:
  Mutex* mu_;
  bool owned_;
};

}  // namespace orwl::sync
