#pragma once
// Combiner: the lock-free serialization primitive behind the grant path.
//
// A flat-combining handoff: callers that mutated shared state announce
// work and, when no combiner is active, become the *combiner* — the
// single thread that processes all outstanding work. Losing the race is
// fine: announce and role-acquisition are ONE atomic RMW on a pending-
// operations counter, so the active combiner is guaranteed to observe
// every announcement before it gives the role up, and no announcement is
// ever lost. The result is mutual exclusion for the processing function
// without a mutex: no thread ever blocks (in the kernel or otherwise) to
// get the role, and the whole protocol is one RMW to enter plus one RMW
// to leave — the same locked-instruction budget as an uncontended mutex,
// with the loser path a single RMW.
//
// How the counter works (Vyukov-style combining counter): pending_ holds
// the number of announced-but-unaccounted operations. fetch_add(1)
// returning 0 means "no combiner was active — the role is mine"; anything
// else means the active combiner's closing fetch_sub will come AFTER our
// increment in the RMW total order, observe it, and process for us. The
// combiner loops: process(), then fetch_sub(handled); a non-zero result
// means more work arrived mid-round, so it processes again. Because RMWs
// on one variable are totally ordered and each reads the previous value,
// there is no store→load (Dekker) hazard anywhere — acq_rel suffices.
//
// Used by orwl::FifoQueue to serialize grant-frontier advancement; kept
// here because the shape is generic (any "multiple announcers, one
// processor at a time" structure can reuse it).

#include <atomic>
#include <cstdint>

namespace orwl::sync {

class Combiner {
 public:
  Combiner() = default;
  Combiner(const Combiner&) = delete;
  Combiner& operator=(const Combiner&) = delete;

  /// Announce one unit of work and process ALL outstanding work if this
  /// thread wins the combiner role. `process` may be invoked zero times
  /// (an active combiner will observe our announcement) or several times
  /// (work kept arriving while we combined). It runs mutually exclusive
  /// with every other `run` on this Combiner. `process` must handle all
  /// outstanding work each call (it is a "catch up completely" step, not
  /// a per-item callback).
  ///
  /// Exception-safe: if `process` throws, the pending counter is cleared
  /// before the exception propagates, so the queue is not wedged: the
  /// next announcement wins the role and catches up on anything the
  /// throwing round left behind.
  template <class F>
  void run(F&& process) {
    // The release half publishes the caller's preceding writes to the
    // combiner that observes this increment (RMWs extend the release
    // sequence); the acquire half makes the winner see every earlier
    // announcer's writes.
    // order: acq_rel — see above.
    if (pending_.fetch_add(1, std::memory_order_acq_rel) != 0)
      return;  // an active combiner's closing fetch_sub sees our add
    std::uint64_t mine = 1;
    for (;;) {
      try {
        process();
      } catch (...) {
        // Drop the role AND the pending count: leaving it non-zero would
        // make every future announcer think a combiner is active and
        // strand the queue. Unprocessed announcements are only triggers;
        // the next run's process() catches up globally.
        // order: acq_rel — role handoff, both directions (see run entry).
        pending_.exchange(0, std::memory_order_acq_rel);
        throw;
      }
      // Close the round: subtract what we accounted for; a non-zero
      // result is work announced mid-round (its release half reached us
      // through the RMW chain), so process again. Zero hands the role to
      // the next announcer's fetch_add.
      // order: acq_rel — round close / role handoff (see run entry).
      mine = pending_.fetch_sub(mine, std::memory_order_acq_rel) - mine;
      if (mine == 0) return;
    }
  }

 private:
  /// Announced-but-unaccounted operations; 0 = no combiner active.
  std::atomic<std::uint64_t> pending_{0};
};

}  // namespace orwl::sync
