#pragma once
// Combiner: the lock-free serialization primitive behind the grant path.
//
// A flat-combining handoff: callers that mutated shared state announce
// work and, when no combiner is active, become the *combiner* — the
// single thread that processes all outstanding work. Losing the race is
// fine: announce and role-acquisition are ONE atomic RMW on a pending-
// operations counter, so the active combiner is guaranteed to observe
// every announcement before it gives the role up, and no announcement is
// ever lost. The result is mutual exclusion for the processing function
// without a mutex: no thread ever blocks (in the kernel or otherwise) to
// get the role, and the whole protocol is one RMW to enter plus one RMW
// to leave — the same locked-instruction budget as an uncontended mutex,
// with the loser path a single RMW.
//
// How the counter works (Vyukov-style combining counter): pending_ holds
// the number of announced-but-unaccounted operations. fetch_add(1)
// returning 0 means "no combiner was active — the role is mine"; anything
// else means the active combiner's closing fetch_sub will come AFTER our
// increment in the RMW total order, observe it, and process for us. The
// combiner loops: process(), then fetch_sub(handled); a non-zero result
// means more work arrived mid-round, so it processes again. Because RMWs
// on one variable are totally ordered and each reads the previous value,
// there is no store→load (Dekker) hazard anywhere — acq_rel suffices.
//
// HIERARCHICAL (NUMA-AWARE) COMBINING. The base protocol is topology-
// blind: the combiner role lands on whichever announcer wins the race and
// stays there while work keeps arriving, dragging the protected
// structure's cache lines to wherever that thread happens to run. The
// extension here makes the role *sticky to a package*: callers pass their
// NUMA node id (plumbed down from topo:: by the queue layer — sync:: is
// BELOW topo:: and never computes node ids itself), losing announcers
// linger briefly on a per-node rendezvous, and a combiner that closes a
// round with work still pending offers the role to a lingering announcer
// on ITS OWN node before draining cross-package records itself. A
// successful offer transfers the role plus the accounted backlog through
// a baton word (release/acquire pair); an unclaimed offer is retracted by
// CAS and the combiner simply continues — the role is never parked on a
// peer that may have left, so liveness needs no timeout recovery.
//
// Handoff safety argument (docs/correctness.md "Combiner handoff safety"):
// the baton is only ever offered by the thread currently holding the
// role, BETWEEN two processing rounds (never mid-process), and the offer
// ends in exactly one of two ways — the combiner's retracting CAS
// succeeds (role retained) or a claimant's CAS succeeds (role
// transferred). Both CAS on the same word on the same offered value, so
// exactly one wins: processing stays mutually exclusive and the
// pending-counter accounting transfers intact (handoff_mine_ rides the
// baton's release/acquire edge).
//
// Used by orwl::FifoQueue to serialize grant-frontier advancement; kept
// here because the shape is generic (any "multiple announcers, one
// processor at a time" structure can reuse it).

#include <atomic>
#include <cstdint>

#include "sync/waiter.h"

namespace orwl::sync {

class Combiner {
 public:
  /// Callers with no topology information pass kAnyNode: they never
  /// linger for a baton and are never offered one.
  static constexpr int kAnyNode = -1;

  /// Spin-loop observation hook, called once per rendezvous spin round
  /// (linger and offer loops). Null by default (a plain pause). The model
  /// checker points it at ThreadCtx::yield so the handoff window becomes
  /// an explicit schedule point; set per thread, so concurrent worlds
  /// cannot interfere.
  struct SpinObserver {
    void (*fn)(void*) = nullptr;
    void* arg = nullptr;
  };
  // Explicit initializers: default member initializers of a nested struct
  // are not usable until the enclosing class is complete.
  static thread_local inline SpinObserver spin_observer{nullptr, nullptr};

  Combiner() = default;
  Combiner(const Combiner&) = delete;
  Combiner& operator=(const Combiner&) = delete;

  /// Announce one unit of work and process ALL outstanding work if this
  /// thread wins (or is handed) the combiner role. `process` may be
  /// invoked zero times (an active combiner will observe our
  /// announcement) or several times (work kept arriving while we
  /// combined). It runs mutually exclusive with every other `run` on this
  /// Combiner. `process` must handle all outstanding work each call (it
  /// is a "catch up completely" step, not a per-item callback).
  ///
  /// `node` is the caller's NUMA node id (topo::current_node_id() in the
  /// runtime; kAnyNode disables the hierarchical path for this call).
  ///
  /// Exception-safe: if `process` throws, the pending counter is cleared
  /// before the exception propagates, so the queue is not wedged: the
  /// next announcement wins the role and catches up on anything the
  /// throwing round left behind.
  template <class F>
  void run(F&& process, int node = kAnyNode) {
    // The release half publishes the caller's preceding writes to the
    // combiner that observes this increment (RMWs extend the release
    // sequence); the acquire half makes the winner see every earlier
    // announcer's writes.
    // order: acq_rel — see above.
    if (pending_.fetch_add(1, std::memory_order_acq_rel) != 0) {
      // Lost the race: an active combiner will account for us. Before
      // leaving, maybe linger as a handoff candidate — but only when the
      // combiner runs on OUR node (it never offers elsewhere), so the
      // cross-node and unknown-node loser paths stay the single RMW they
      // always were.
      if (node < 0) return;
      // order: relaxed — advisory locality probe (see combiner_node_).
      const int cn = combiner_node_.load(std::memory_order_relaxed);
      if (cn != node) {
        if (cn >= 0)
          // order: relaxed — monotonic statistic.
          cross_node_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      const std::uint64_t transferred = linger_for_baton(node);
      if (transferred != 0) combine_loop(process, node, transferred);
      return;
    }
    // Advisory locality hint for losing announcers' cross-node
    // accounting; carries no payload. Checked before storing: the
    // uncontended fast path (one thread winning the role repeatedly)
    // then costs a read of an unchanging line instead of dirtying it.
    // order: relaxed — advisory hint, no payload (see above).
    if (combiner_node_.load(std::memory_order_relaxed) != node)
      combiner_node_.store(node, std::memory_order_relaxed);
    combine_loop(process, node, 1);
  }

  /// Successful role transfers (metrics: orwl.combiner.handoffs).
  [[nodiscard]] std::uint64_t handoffs() const {
    // order: relaxed — monotonic statistic, read for reporting only.
    return handoffs_.load(std::memory_order_relaxed);
  }
  /// Announcements absorbed by a combiner running on a different node
  /// (metrics: orwl.combiner.cross_node) — the traffic hierarchical
  /// combining exists to shrink.
  [[nodiscard]] std::uint64_t cross_node() const {
    // order: relaxed — monotonic statistic, read for reporting only.
    return cross_node_.load(std::memory_order_relaxed);
  }

  /// Rendezvous spin budgets, in observation rounds. Quiescent setup only
  /// (tests / the model checker shrink them to keep DFS state spaces
  /// small); the defaults cost well under a microsecond.
  void set_handoff_budgets(int linger_rounds, int offer_rounds) {
    linger_rounds_ = linger_rounds;
    offer_rounds_ = offer_rounds;
  }

 private:
  /// Nodes are folded into this many rendezvous lanes (node & mask); a
  /// collision only means two nodes share a lane — the baton still names
  /// one concrete node, so a wrong-lane lingerer simply fails its claim.
  static constexpr std::size_t kNodeLanes = 16;

  static void observe_spin() {
    if (spin_observer.fn)
      spin_observer.fn(spin_observer.arg);
    else
      cpu_relax();
  }

  /// The combiner loop proper, entered with the role held and `mine`
  /// announcements accounted to us (1 for a fresh win; the transferred
  /// backlog after claiming a baton).
  template <class F>
  void combine_loop(F&& process, int node, std::uint64_t mine) {
    for (;;) {
      try {
        process();
      } catch (...) {
        // Drop the role AND the pending count: leaving it non-zero would
        // make every future announcer think a combiner is active and
        // strand the queue. Unprocessed announcements are only triggers;
        // the next run's process() catches up globally.
        // order: acq_rel — role handoff, both directions (see run entry).
        pending_.exchange(0, std::memory_order_acq_rel);
        throw;
      }
      // Close the round: subtract what we accounted for; a non-zero
      // result is work announced mid-round (its release half reached us
      // through the RMW chain), so process again. Zero hands the role to
      // the next announcer's fetch_add.
      // order: acq_rel — round close / role handoff (see run entry).
      mine = pending_.fetch_sub(mine, std::memory_order_acq_rel) - mine;
      if (mine == 0) return;
      // Backlog remains. Preferred-owner handoff: if an announcer on our
      // own node is lingering, pass it the role instead of processing
      // another (possibly cross-package) round ourselves.
      if (node >= 0 && offer_baton(node, mine)) return;
    }
  }

  /// Losing-announcer side of the rendezvous: advertise on our node's
  /// lane, watch the baton for a bounded number of rounds, claim it if it
  /// is offered to our node. Returns the transferred backlog count (now
  /// accounted to US as the new combiner), or 0 if no offer was claimed
  /// and the caller should leave (the active combiner covers it).
  std::uint64_t linger_for_baton(int node) {
    std::atomic<std::uint32_t>& lane = waiting_[lane_of(node)];
    // order: relaxed — advisory presence count; the baton word itself
    // carries all ordering.
    lane.fetch_add(1, std::memory_order_relaxed);
    std::uint64_t transferred = 0;
    for (int round = 0; round < linger_rounds_; ++round) {
      // order: relaxed — peek only; the claim CAS below re-reads with
      // acquire and is the real synchronization point.
      if (baton_.load(std::memory_order_relaxed) == node + 1) {
        int expected = node + 1;
        // order: acquire on success — pairs with offer_baton's release
        // store, carrying handoff_mine_ and every queue write of the old
        // combiner to us. relaxed on failure — we learned nothing.
        if (baton_.compare_exchange_strong(
                expected, 0,
                std::memory_order_acquire,     // order: claim (see above)
                std::memory_order_relaxed)) {  // order: failed (see above)
          // order: relaxed — ordered by the successful acquire CAS above.
          transferred = handoff_mine_.load(std::memory_order_relaxed);
          // order: relaxed — advisory (see cross_node_hint).
          combiner_node_.store(node, std::memory_order_relaxed);
          handoffs_.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        continue;  // another lingerer on our node claimed it
      }
      // order: relaxed — advisory early exit: 0 means the role is free
      // (the combiner closed its last round, which also accounted for our
      // announcement), so no offer can come — stop burning the budget.
      if (pending_.load(std::memory_order_relaxed) == 0) break;
      observe_spin();
    }
    // order: relaxed — advisory presence count (see above).
    lane.fetch_sub(1, std::memory_order_relaxed);
    return transferred;
  }

  /// Combiner side of the rendezvous: if someone is lingering on our
  /// node's lane, publish the baton (role + accounted backlog `mine`) and
  /// wait a bounded number of rounds for a claim. Returns true when the
  /// role was transferred (caller must NOT touch the protected structure
  /// again); false when the offer was retracted (caller still holds the
  /// role). Only the role holder calls this, between processing rounds.
  bool offer_baton(int node, std::uint64_t mine) {
    // order: relaxed — advisory probe; a just-left lingerer only costs us
    // a retracted offer, a just-arrived one is caught next round.
    if (waiting_[lane_of(node)].load(std::memory_order_relaxed) == 0)
      return false;
    // order: relaxed — the baton's release store below publishes it.
    handoff_mine_.store(mine, std::memory_order_relaxed);
    // Plain store is safe: only the role holder writes an offer, and the
    // word is 0 (no claimant may touch it) until this store.
    // order: release — publishes handoff_mine_ and all our processing
    // writes to the claimant's acquire CAS.
    baton_.store(node + 1, std::memory_order_release);
    for (int round = 0; round < offer_rounds_; ++round) {
      // order: relaxed — a disappeared offer means a claim CAS succeeded;
      // the claimant needs no data from us beyond the baton edge itself.
      if (baton_.load(std::memory_order_relaxed) != node + 1) return true;
      observe_spin();
    }
    int expected = node + 1;
    // Retract. Exactly one of {this CAS, a claim CAS} succeeds on the
    // offered value, so the role cannot be duplicated or lost: failure
    // here IS a successful (concurrent) claim.
    // order: acq_rel — on success we resume processing with the role we
    // never actually gave away; acq_rel keeps the retraction ordered
    // against a claimant's CAS on the same word. relaxed on failure.
    return !baton_.compare_exchange_strong(
        expected, 0,
        std::memory_order_acq_rel,   // order: retract (see above)
        std::memory_order_relaxed);  // order: failed = claimed (see above)
  }

  static std::size_t lane_of(int node) {
    return static_cast<std::size_t>(node) & (kNodeLanes - 1);
  }

  /// Announced-but-unaccounted operations; 0 = no combiner active.
  std::atomic<std::uint64_t> pending_{0};
  /// Handoff baton: 0 = none, node+1 = role offered to that node.
  std::atomic<int> baton_{0};
  /// Backlog count riding the baton (valid while baton_ holds an offer).
  std::atomic<std::uint64_t> handoff_mine_{0};
  /// Node of the current role holder (advisory, for cross_node stats).
  std::atomic<int> combiner_node_{kAnyNode};
  /// Lingering announcers per rendezvous lane (advisory occupancy).
  std::atomic<std::uint32_t> waiting_[kNodeLanes] = {};

  std::atomic<std::uint64_t> handoffs_{0};
  std::atomic<std::uint64_t> cross_node_{0};

  int linger_rounds_ = 64;
  int offer_rounds_ = 128;
};

}  // namespace orwl::sync
