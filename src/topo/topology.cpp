#include "topo/topology.h"

#include <algorithm>
#include <functional>
#include <sstream>
#include <thread>

#include "support/assert.h"
#include "topo/sysfs.h"

namespace orwl::topo {

std::string to_string(ObjType t) {
  switch (t) {
    case ObjType::Machine: return "machine";
    case ObjType::Group: return "group";
    case ObjType::Package: return "pack";
    case ObjType::NUMANode: return "numa";
    case ObjType::L3: return "l3";
    case ObjType::L2: return "l2";
    case ObjType::Core: return "core";
    case ObjType::PU: return "pu";
  }
  return "?";
}

ObjType parse_obj_type(const std::string& name) {
  if (name == "machine") return ObjType::Machine;
  if (name == "group") return ObjType::Group;
  if (name == "pack" || name == "package" || name == "socket")
    return ObjType::Package;
  if (name == "numa" || name == "numanode") return ObjType::NUMANode;
  if (name == "l3") return ObjType::L3;
  if (name == "l2") return ObjType::L2;
  if (name == "core") return ObjType::Core;
  if (name == "pu" || name == "thread" || name == "hwthread")
    return ObjType::PU;
  ORWL_CHECK_MSG(false, "unknown topology object type '" << name << "'");
  return ObjType::PU;  // unreachable
}

Topology Topology::synthetic(const std::string& spec) {
  // Parse "type:count" terms.
  std::vector<std::pair<ObjType, int>> terms;
  std::istringstream is(spec);
  std::string term;
  while (is >> term) {
    const auto colon = term.find(':');
    ORWL_CHECK_MSG(colon != std::string::npos,
                   "synthetic term '" << term << "' lacks ':count'");
    const ObjType type = parse_obj_type(term.substr(0, colon));
    ORWL_CHECK_MSG(type != ObjType::Machine,
                   "'machine' is implicit in synthetic specs");
    int count = 0;
    try {
      count = std::stoi(term.substr(colon + 1));
    } catch (const std::exception&) {
      ORWL_CHECK_MSG(false, "bad count in synthetic term '" << term << "'");
    }
    ORWL_CHECK_MSG(count >= 1, "count must be >= 1 in '" << term << "'");
    terms.emplace_back(type, count);
  }
  ORWL_CHECK_MSG(!terms.empty(), "empty synthetic spec");
  ORWL_CHECK_MSG(terms.back().first == ObjType::PU,
                 "synthetic spec must end with a pu level");
  for (std::size_t i = 0; i + 1 < terms.size(); ++i)
    ORWL_CHECK_MSG(terms[i].first != ObjType::PU,
                   "pu level must be last in synthetic spec");

  auto root = std::make_unique<Object>();
  root->type = ObjType::Machine;

  int next_os = 0;
  std::function<void(Object&, std::size_t)> grow = [&](Object& parent,
                                                       std::size_t term_idx) {
    if (term_idx == terms.size()) return;
    const auto [type, count] = terms[term_idx];
    for (int c = 0; c < count; ++c) {
      auto child = std::make_unique<Object>();
      child->type = type;
      child->parent = &parent;
      if (type == ObjType::PU) child->os_index = next_os++;
      grow(*child, term_idx + 1);
      parent.children.push_back(std::move(child));
    }
  };
  grow(*root, 0);
  return from_tree(std::move(root));
}

Topology Topology::paper_machine() { return synthetic("pack:24 core:8 pu:1"); }

Topology Topology::flat(int npus) {
  ORWL_CHECK_MSG(npus >= 1, "flat topology needs at least one PU");
  return synthetic("pu:" + std::to_string(npus));
}

Topology Topology::host() {
  if (auto detected = detect_from_sysfs("/sys")) return std::move(*detected);
  const unsigned hc = std::thread::hardware_concurrency();
  return flat(hc > 0 ? static_cast<int>(hc) : 1);
}

Topology Topology::clone() const {
  std::function<std::unique_ptr<Object>(const Object&)> copy =
      [&](const Object& src) {
        auto dst = std::make_unique<Object>();
        dst->type = src.type;
        dst->os_index = src.os_index;
        for (const auto& ch : src.children) {
          auto c = copy(*ch);
          c->parent = dst.get();
          dst->children.push_back(std::move(c));
        }
        return dst;
      };
  return from_tree(copy(*root_));
}

Topology Topology::from_tree(std::unique_ptr<Object> root) {
  ORWL_CHECK(root != nullptr);
  Topology t;
  t.root_ = std::move(root);
  t.index();
  return t;
}

void Topology::index() {
  levels_.clear();
  // Breadth-first: assign depths and level-local logical indices.
  std::vector<Object*> frontier{root_.get()};
  int depth = 0;
  while (!frontier.empty()) {
    std::vector<Object*> next;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      Object* obj = frontier[i];
      obj->depth = depth;
      obj->logical_index = static_cast<int>(i);
      for (auto& ch : obj->children) next.push_back(ch.get());
    }
    levels_.push_back(frontier);
    frontier = std::move(next);
    ++depth;
  }
  // Leaves must be PUs at the deepest level with unique os indices.
  Bitmap seen;
  for (Object* leaf : levels_.back()) {
    ORWL_CHECK_MSG(leaf->type == ObjType::PU,
                   "topology leaf is not a PU (type "
                       << orwl::topo::to_string(leaf->type) << ")");
    ORWL_CHECK_MSG(leaf->os_index >= 0, "PU without os_index");
    ORWL_CHECK_MSG(!seen.test(leaf->os_index),
                   "duplicate PU os_index " << leaf->os_index);
    seen.set(leaf->os_index);
  }
  // Intermediate levels must not contain leaves (tree must be uniform-depth).
  for (std::size_t d = 0; d + 1 < levels_.size(); ++d)
    for (Object* obj : levels_[d])
      ORWL_CHECK_MSG(!obj->is_leaf(),
                     "non-PU leaf at depth " << d << "; topology must have "
                     "uniform depth");
  // Fill cpusets bottom-up.
  for (std::size_t d = levels_.size(); d-- > 0;) {
    for (Object* obj : levels_[d]) {
      if (obj->is_leaf()) {
        obj->cpuset = Bitmap::single(obj->os_index);
      } else {
        obj->cpuset = Bitmap{};
        for (auto& ch : obj->children) obj->cpuset |= ch->cpuset;
      }
    }
  }
}

std::span<Object* const> Topology::level(int d) const {
  ORWL_CHECK_MSG(d >= 0 && d < depth(), "level " << d << " out of range");
  return levels_[static_cast<std::size_t>(d)];
}

std::span<Object* const> Topology::pus() const { return levels_.back(); }

std::vector<int> Topology::arities() const {
  std::vector<int> out;
  for (std::size_t d = 0; d + 1 < levels_.size(); ++d) {
    int a = 0;
    for (const Object* obj : levels_[d]) a = std::max(a, obj->arity());
    out.push_back(a);
  }
  return out;
}

bool Topology::is_balanced() const {
  for (std::size_t d = 0; d + 1 < levels_.size(); ++d) {
    const int a = levels_[d].front()->arity();
    for (const Object* obj : levels_[d])
      if (obj->arity() != a) return false;
  }
  return true;
}

const Object* Topology::pu_by_os(int os_index) const {
  for (const Object* pu : pus())
    if (pu->os_index == os_index) return pu;
  return nullptr;
}

int Topology::common_ancestor_depth(const Object& a, const Object& b) const {
  const Object* pa = &a;
  const Object* pb = &b;
  while (pa->depth > pb->depth) pa = pa->parent;
  while (pb->depth > pa->depth) pb = pb->parent;
  while (pa != pb) {
    pa = pa->parent;
    pb = pb->parent;
    ORWL_CHECK_MSG(pa && pb, "objects from different topologies");
  }
  return pa->depth;
}

int Topology::hop_distance(const Object& a, const Object& b) const {
  const int dca = common_ancestor_depth(a, b);
  return (a.depth - dca) + (b.depth - dca);
}

std::string Topology::to_string() const {
  std::ostringstream os;
  std::function<void(const Object&, int)> dump = [&](const Object& obj,
                                                     int indent) {
    for (int i = 0; i < indent; ++i) os << "  ";
    os << topo::to_string(obj.type) << '#' << obj.logical_index;
    if (obj.type == ObjType::PU) os << " (os " << obj.os_index << ')';
    if (!obj.is_leaf()) os << " [" << obj.cpuset.to_list_string() << ']';
    os << '\n';
    // Collapse repetition: show first child subtree, then a count, when all
    // children are structurally identical leaves-only PUs at big arity.
    for (const auto& ch : obj.children) dump(*ch, indent + 1);
  };
  dump(*root_, 0);
  return os.str();
}

std::string Topology::to_dot() const {
  std::ostringstream os;
  os << "digraph topology {\n  rankdir=TB;\n  node [shape=box];\n";
  std::function<void(const Object&)> dump = [&](const Object& obj) {
    os << "  n" << obj.depth << '_' << obj.logical_index << " [label=\""
       << topo::to_string(obj.type) << ' ' << obj.logical_index;
    if (obj.type == ObjType::PU) os << "\\nos " << obj.os_index;
    else os << "\\ncpuset " << obj.cpuset.to_list_string();
    os << "\"];\n";
    for (const auto& ch : obj.children) {
      os << "  n" << obj.depth << '_' << obj.logical_index << " -> n"
         << ch->depth << '_' << ch->logical_index << ";\n";
      dump(*ch);
    }
  };
  dump(*root_);
  os << "}\n";
  return os.str();
}

std::string Topology::summary() const {
  if (!is_balanced())
    return "irregular(" + std::to_string(num_pus()) + " pus)";
  std::ostringstream os;
  for (std::size_t d = 1; d < levels_.size(); ++d) {
    if (d > 1) os << ' ';
    os << topo::to_string(levels_[d].front()->type) << ':'
       << levels_[d - 1].front()->arity();
  }
  return os.str();
}

}  // namespace orwl::topo
