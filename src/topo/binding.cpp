#include "topo/binding.h"

#include "support/assert.h"

#ifdef __linux__
#include <sched.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace orwl::topo {

namespace detail {

thread_local int tl_node_cache = -1;
thread_local int tl_node_override = kNodeNoOverride;

int query_current_node() {
#ifdef __linux__
  // getcpu(2) reports the node directly — no cpu->node table needed, so
  // this stays free of any dependency on the mem:: NUMA inventory (which
  // layers ABOVE topo).
  unsigned cpu = 0;
  unsigned node = 0;
  if (syscall(SYS_getcpu, &cpu, &node, nullptr) == 0)
    return static_cast<int>(node);
#endif
  return 0;
}

}  // namespace detail

#ifdef __linux__

namespace {

bool fill_cpu_set(const Bitmap& cpuset, cpu_set_t& set) {
  ORWL_CHECK_MSG(!cpuset.empty(), "cannot bind to an empty cpuset");
  CPU_ZERO(&set);
  for (int cpu : cpuset.to_vector()) {
    if (cpu >= CPU_SETSIZE) return false;
    CPU_SET(cpu, &set);
  }
  return true;
}

}  // namespace

bool bind_current_thread(const Bitmap& cpuset) {
  cpu_set_t set;
  if (!fill_cpu_set(cpuset, set)) return false;
  if (sched_setaffinity(0, sizeof set, &set) != 0) return false;
  // The kernel has already migrated us onto an allowed CPU; re-learn the
  // node lazily so the combiner's locality hint tracks placement.
  invalidate_current_node_id();
  return true;
}

ThreadHandle current_thread_handle() { return pthread_self(); }

bool bind_thread(ThreadHandle thread, const Bitmap& cpuset) {
  cpu_set_t set;
  if (!fill_cpu_set(cpuset, set)) return false;
  return pthread_setaffinity_np(thread, sizeof set, &set) == 0;
}

std::optional<Bitmap> current_thread_binding() {
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof set, &set) != 0) return std::nullopt;
  Bitmap b;
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu)
    if (CPU_ISSET(cpu, &set)) b.set(cpu);
  return b;
}

#else  // non-Linux: binding is a no-op.

bool bind_current_thread(const Bitmap& cpuset) {
  ORWL_CHECK_MSG(!cpuset.empty(), "cannot bind to an empty cpuset");
  return false;
}

ThreadHandle current_thread_handle() { return 0; }

bool bind_thread(ThreadHandle, const Bitmap& cpuset) {
  ORWL_CHECK_MSG(!cpuset.empty(), "cannot bind to an empty cpuset");
  return false;
}

std::optional<Bitmap> current_thread_binding() { return std::nullopt; }

#endif

ScopedBinding::ScopedBinding(const Bitmap& cpuset) {
  previous_ = current_thread_binding();
  bound_ = bind_current_thread(cpuset);
}

ScopedBinding::~ScopedBinding() {
  if (bound_ && previous_) bind_current_thread(*previous_);
}

}  // namespace orwl::topo
