#include "topo/binding.h"

#include "support/assert.h"

#ifdef __linux__
#include <sched.h>
#endif

namespace orwl::topo {

#ifdef __linux__

bool bind_current_thread(const Bitmap& cpuset) {
  ORWL_CHECK_MSG(!cpuset.empty(), "cannot bind to an empty cpuset");
  cpu_set_t set;
  CPU_ZERO(&set);
  for (int cpu : cpuset.to_vector()) {
    if (cpu >= CPU_SETSIZE) return false;
    CPU_SET(cpu, &set);
  }
  return sched_setaffinity(0, sizeof set, &set) == 0;
}

std::optional<Bitmap> current_thread_binding() {
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof set, &set) != 0) return std::nullopt;
  Bitmap b;
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu)
    if (CPU_ISSET(cpu, &set)) b.set(cpu);
  return b;
}

#else  // non-Linux: binding is a no-op.

bool bind_current_thread(const Bitmap& cpuset) {
  ORWL_CHECK_MSG(!cpuset.empty(), "cannot bind to an empty cpuset");
  return false;
}

std::optional<Bitmap> current_thread_binding() { return std::nullopt; }

#endif

ScopedBinding::ScopedBinding(const Bitmap& cpuset) {
  previous_ = current_thread_binding();
  bound_ = bind_current_thread(cpuset);
}

ScopedBinding::~ScopedBinding() {
  if (bound_ && previous_) bind_current_thread(*previous_);
}

}  // namespace orwl::topo
