#pragma once
// Thread-to-cpuset binding (the hwloc_set_cpubind equivalent).

#include <optional>

#ifdef __linux__
#include <pthread.h>
#endif

#include "topo/bitmap.h"

namespace orwl::topo {

/// Bind the calling thread to the given cpuset. Returns false (and leaves
/// the binding unchanged) if the OS rejects the request — e.g. the cpuset
/// names CPUs that do not exist on this machine. An empty cpuset is
/// rejected with ContractError.
bool bind_current_thread(const Bitmap& cpuset);

/// Opaque handle for binding *another* thread (the pthread_t on Linux).
#ifdef __linux__
using ThreadHandle = pthread_t;
#else
using ThreadHandle = int;
#endif

/// Handle of the calling thread, for a later bind_thread() from elsewhere.
ThreadHandle current_thread_handle();

/// Re-bind a (possibly running) thread to `cpuset` — the mid-run migration
/// primitive the online re-placer uses on parked compute threads and live
/// control threads. Same failure semantics as bind_current_thread; also
/// returns false when the target thread has already exited.
bool bind_thread(ThreadHandle thread, const Bitmap& cpuset);

/// Current affinity mask of the calling thread, or nullopt if it cannot be
/// queried on this platform.
std::optional<Bitmap> current_thread_binding();

namespace detail {
/// Thread-cached NUMA node state. The grant path calls current_node_id()
/// on every combine, so the fast path must inline down to two
/// thread_local loads — which is why these live in the header instead of
/// behind a function call. -1 = not yet queried; kNodeNoOverride keeps 0
/// a valid forced value for ScopedNodeId.
inline constexpr int kNodeNoOverride = -2;
extern thread_local int tl_node_cache;
extern thread_local int tl_node_override;
/// The getcpu(2) query (out of line; called once per thread/invalidate).
int query_current_node();
}  // namespace detail

/// NUMA node of the CPU the calling thread runs on, cached per thread —
/// cheap enough for the grant hot path (one thread_local read after the
/// first call; the first call is one getcpu(2)). The cache is invalidated
/// by bind_current_thread / ScopedBinding, so runtime threads re-learn
/// their node when placement moves them. An unbound thread the OS migrates
/// mid-run may report a stale node until its next rebind: staleness only
/// degrades combiner-handoff locality, never correctness. Returns 0 when
/// the platform cannot say (non-Linux, kernels without getcpu).
inline int current_node_id() {
  const int forced = detail::tl_node_override;
  if (forced != detail::kNodeNoOverride) return forced;
  const int cached = detail::tl_node_cache;
  if (cached >= 0) return cached;
  return detail::tl_node_cache = detail::query_current_node();
}

/// Drop the calling thread's cached node id; the next current_node_id()
/// re-queries the OS. Called by bind_current_thread; exposed for code that
/// changes affinity through other channels (bind_thread on self).
inline void invalidate_current_node_id() { detail::tl_node_cache = -1; }

/// Test seam: force current_node_id() on the calling thread while in
/// scope — lets single-machine tests and the model checker fabricate
/// multi-package worlds. Nests (restores the previous override).
class ScopedNodeId {
 public:
  explicit ScopedNodeId(int node) : previous_(detail::tl_node_override) {
    detail::tl_node_override = node;
  }
  ~ScopedNodeId() { detail::tl_node_override = previous_; }
  ScopedNodeId(const ScopedNodeId&) = delete;
  ScopedNodeId& operator=(const ScopedNodeId&) = delete;

 private:
  int previous_;
};

/// RAII: bind on construction, restore the previous mask on destruction.
/// If binding fails, bound() reports false and destruction is a no-op.
class ScopedBinding {
 public:
  explicit ScopedBinding(const Bitmap& cpuset);
  ~ScopedBinding();
  ScopedBinding(const ScopedBinding&) = delete;
  ScopedBinding& operator=(const ScopedBinding&) = delete;

  [[nodiscard]] bool bound() const { return bound_; }

 private:
  std::optional<Bitmap> previous_;
  bool bound_ = false;
};

}  // namespace orwl::topo
