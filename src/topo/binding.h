#pragma once
// Thread-to-cpuset binding (the hwloc_set_cpubind equivalent).

#include <optional>

#ifdef __linux__
#include <pthread.h>
#endif

#include "topo/bitmap.h"

namespace orwl::topo {

/// Bind the calling thread to the given cpuset. Returns false (and leaves
/// the binding unchanged) if the OS rejects the request — e.g. the cpuset
/// names CPUs that do not exist on this machine. An empty cpuset is
/// rejected with ContractError.
bool bind_current_thread(const Bitmap& cpuset);

/// Opaque handle for binding *another* thread (the pthread_t on Linux).
#ifdef __linux__
using ThreadHandle = pthread_t;
#else
using ThreadHandle = int;
#endif

/// Handle of the calling thread, for a later bind_thread() from elsewhere.
ThreadHandle current_thread_handle();

/// Re-bind a (possibly running) thread to `cpuset` — the mid-run migration
/// primitive the online re-placer uses on parked compute threads and live
/// control threads. Same failure semantics as bind_current_thread; also
/// returns false when the target thread has already exited.
bool bind_thread(ThreadHandle thread, const Bitmap& cpuset);

/// Current affinity mask of the calling thread, or nullopt if it cannot be
/// queried on this platform.
std::optional<Bitmap> current_thread_binding();

/// RAII: bind on construction, restore the previous mask on destruction.
/// If binding fails, bound() reports false and destruction is a no-op.
class ScopedBinding {
 public:
  explicit ScopedBinding(const Bitmap& cpuset);
  ~ScopedBinding();
  ScopedBinding(const ScopedBinding&) = delete;
  ScopedBinding& operator=(const ScopedBinding&) = delete;

  [[nodiscard]] bool bound() const { return bound_; }

 private:
  std::optional<Bitmap> previous_;
  bool bound_ = false;
};

}  // namespace orwl::topo
