#pragma once
// Linux sysfs topology detection. Parses
//   <root>/devices/system/cpu/online
//   <root>/devices/system/cpu/cpuN/topology/physical_package_id
//   <root>/devices/system/cpu/cpuN/topology/core_id
//   <root>/devices/system/node/nodeN/cpulist        (optional)
// into a Machine → Package → [NUMANode →] Core → PU tree.
//
// The root path is a parameter so tests can point it at a fabricated
// directory tree.

#include <optional>
#include <string>

#include "topo/topology.h"

namespace orwl::topo {

/// Detect the machine described under `sysfs_root` (normally "/sys").
/// Returns nullopt when the expected files are absent or unreadable.
std::optional<Topology> detect_from_sysfs(const std::string& sysfs_root);

}  // namespace orwl::topo
