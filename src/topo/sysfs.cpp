#include "topo/sysfs.h"

#include <filesystem>
#include <map>

#include "support/assert.h"
#include "support/file.h"
#include "support/log.h"

namespace orwl::topo {

namespace {

std::optional<int> read_int(const std::filesystem::path& p) {
  const auto s = read_file_trimmed(p);
  if (!s) return std::nullopt;
  try {
    return std::stoi(*s);
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

std::optional<Topology> detect_from_sysfs(const std::string& sysfs_root) {
  namespace fs = std::filesystem;
  const fs::path cpu_dir = fs::path(sysfs_root) / "devices/system/cpu";

  const auto online_str = read_file_trimmed(cpu_dir / "online");
  if (!online_str) return std::nullopt;
  Bitmap online;
  try {
    online = Bitmap::parse_list(*online_str);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (online.empty()) return std::nullopt;

  // NUMA node of each cpu (optional).
  std::map<int, int> cpu_numa;  // os cpu -> node id
  const fs::path node_dir = fs::path(sysfs_root) / "devices/system/node";
  std::error_code ec;
  if (fs::is_directory(node_dir, ec)) {
    for (const auto& entry : fs::directory_iterator(node_dir, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("node", 0) != 0) continue;
      int node_id = -1;
      try {
        node_id = std::stoi(name.substr(4));
      } catch (const std::exception&) {
        continue;
      }
      if (const auto list = read_file_trimmed(entry.path() / "cpulist")) {
        try {
          for (int cpu : Bitmap::parse_list(*list).to_vector())
            cpu_numa[cpu] = node_id;
        } catch (const std::exception&) {
          // Malformed node cpulist: ignore NUMA info for this node.
        }
      }
    }
  }

  // Sibling-mask fallback: newer kernels (and stripped-down VMs) may only
  // expose package_cpus/core_cpus (or the legacy core_siblings/
  // thread_siblings) hex masks instead of the id files. Identify packages
  // and cores by their distinct masks.
  std::vector<Bitmap> pack_masks;
  std::vector<Bitmap> core_masks;
  auto mask_id = [](std::vector<Bitmap>& known, const Bitmap& m) {
    for (std::size_t i = 0; i < known.size(); ++i)
      if (known[i] == m) return static_cast<int>(i);
    known.push_back(m);
    return static_cast<int>(known.size() - 1);
  };
  auto read_mask = [&](const fs::path& dir, const char* preferred,
                       const char* legacy) -> std::optional<Bitmap> {
    for (const char* name : {preferred, legacy}) {
      if (const auto s = read_file_trimmed(dir / name)) {
        try {
          return Bitmap::parse_hex_mask(*s);
        } catch (const ContractError&) {
          return std::nullopt;
        }
      }
    }
    return std::nullopt;
  };

  // Group cpus: package -> numa -> core -> [pus].
  // Key components default to 0 when a file is missing so that partially
  // populated sysfs trees (VMs, containers) still produce a usable tree.
  struct Key {
    int pack, numa, core;
    auto operator<=>(const Key&) const = default;
  };
  std::map<Key, std::vector<int>> groups;
  bool any_topology_file = false;
  for (int cpu : online.to_vector()) {
    const fs::path topo = cpu_dir / ("cpu" + std::to_string(cpu)) / "topology";
    auto pack = read_int(topo / "physical_package_id");
    auto core = read_int(topo / "core_id");
    if (!pack) {
      if (const auto m = read_mask(topo, "package_cpus", "core_siblings"))
        pack = mask_id(pack_masks, *m);
    }
    if (!core) {
      if (const auto m = read_mask(topo, "core_cpus", "thread_siblings"))
        core = mask_id(core_masks, *m);
    }
    if (pack || core) any_topology_file = true;
    const auto numa_it = cpu_numa.find(cpu);
    groups[Key{pack.value_or(0), numa_it == cpu_numa.end() ? 0 : numa_it->second,
               core.value_or(0)}]
        .push_back(cpu);
  }
  if (!any_topology_file && cpu_numa.empty()) {
    // No structure at all: report failure so callers fall back to flat().
    return std::nullopt;
  }

  const bool have_numa = !cpu_numa.empty();

  auto root = std::make_unique<Object>();
  root->type = ObjType::Machine;

  // Build nested maps for deterministic construction order.
  std::map<int, std::map<int, std::map<int, std::vector<int>>>> nested;
  for (const auto& [key, cpus] : groups) nested[key.pack][key.numa][key.core] = cpus;

  for (const auto& [pack_id, numas] : nested) {
    auto pack = std::make_unique<Object>();
    pack->type = ObjType::Package;
    pack->parent = root.get();
    (void)pack_id;
    for (const auto& [numa_id, cores] : numas) {
      Object* core_parent = pack.get();
      std::unique_ptr<Object> numa;
      if (have_numa) {
        numa = std::make_unique<Object>();
        numa->type = ObjType::NUMANode;
        numa->parent = pack.get();
        // Keep the OS node id: memory placement (mem/numa.h) speaks OS
        // node ids, and lstopo-style output can show them.
        numa->os_index = numa_id;
        core_parent = numa.get();
      }
      for (const auto& [core_id, cpus] : cores) {
        auto core = std::make_unique<Object>();
        core->type = ObjType::Core;
        core->parent = core_parent;
        (void)core_id;
        for (int cpu : cpus) {
          auto pu = std::make_unique<Object>();
          pu->type = ObjType::PU;
          pu->parent = core.get();
          pu->os_index = cpu;
          core->children.push_back(std::move(pu));
        }
        core_parent->children.push_back(std::move(core));
      }
      if (numa) pack->children.push_back(std::move(numa));
    }
    root->children.push_back(std::move(pack));
  }

  try {
    return Topology::from_tree(std::move(root));
  } catch (const ContractError& e) {
    ORWL_LOG(Warn) << "sysfs topology rejected: " << e.what();
    return std::nullopt;
  }
}

}  // namespace orwl::topo
