#pragma once
// Bitmap: a dynamically-sized CPU set, modelled after hwloc_bitmap_t.
// Bit i represents the OS index of processing unit i.

#include <cstdint>
#include <string>
#include <vector>

namespace orwl::topo {

class Bitmap {
 public:
  /// Empty set.
  Bitmap() = default;

  /// Set containing the single index `bit`.
  static Bitmap single(int bit);

  /// Set containing [first, last] inclusive.
  static Bitmap range(int first, int last);

  /// Parse a Linux cpulist string ("0-3,8,10-11"). Throws ContractError on
  /// malformed input.
  static Bitmap parse_list(const std::string& list);

  /// Parse a Linux hex cpumask string as found in sysfs sibling files
  /// ("ff", "00ff00ff", "1,ffffffff" — comma-separated 32-bit words, most
  /// significant first). Throws ContractError on malformed input.
  static Bitmap parse_hex_mask(const std::string& mask);

  void set(int bit);
  void clear(int bit);
  [[nodiscard]] bool test(int bit) const;

  /// Number of set bits.
  [[nodiscard]] int count() const;
  [[nodiscard]] bool empty() const;

  /// Lowest set bit, or -1 if empty.
  [[nodiscard]] int first() const;
  /// Lowest set bit strictly greater than `prev`, or -1.
  [[nodiscard]] int next(int prev) const;
  /// Highest set bit, or -1 if empty.
  [[nodiscard]] int last() const;

  /// Set union / intersection (in place).
  Bitmap& operator|=(const Bitmap& o);
  Bitmap& operator&=(const Bitmap& o);
  friend Bitmap operator|(Bitmap a, const Bitmap& b) { return a |= b; }
  friend Bitmap operator&(Bitmap a, const Bitmap& b) { return a &= b; }

  /// True if every bit of this set is also in `o`.
  [[nodiscard]] bool is_subset_of(const Bitmap& o) const;
  /// True if the two sets share at least one bit.
  [[nodiscard]] bool intersects(const Bitmap& o) const;

  bool operator==(const Bitmap& o) const;

  /// All set indices in increasing order.
  [[nodiscard]] std::vector<int> to_vector() const;

  /// Linux cpulist rendering ("0-3,8").
  [[nodiscard]] std::string to_list_string() const;

 private:
  void ensure(int bit);
  void trim();
  std::vector<std::uint64_t> words_;
};

}  // namespace orwl::topo
