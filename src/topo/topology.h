#pragma once
// Topology: a portable, hwloc-style hierarchical model of a shared-memory
// machine. The tree goes Machine → (Package | NUMANode | Cache | Core | PU);
// leaves are always PUs (processing units, i.e. hardware threads).
//
// This is the substrate the paper obtains from HWLOC: the mapping algorithm
// consumes only the tree shape (depths, arities) and the per-leaf cpusets
// used for binding.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "topo/bitmap.h"

namespace orwl::topo {

/// Kind of a topology object, from the root down.
enum class ObjType {
  Machine,   ///< whole shared-memory system (root)
  Group,     ///< generic intermediate grouping (e.g. board)
  Package,   ///< physical socket
  NUMANode,  ///< memory locality domain
  L3,        ///< shared last-level cache
  L2,        ///< mid-level cache
  Core,      ///< physical core
  PU,        ///< processing unit / hardware thread (leaf)
};

/// Short lower-case name of an object type ("pack", "core", "pu", ...).
std::string to_string(ObjType t);

/// Parse a type name used in synthetic descriptions. Accepts the names
/// produced by to_string plus common aliases ("socket", "numa", "machine").
/// Throws ContractError on unknown names.
ObjType parse_obj_type(const std::string& name);

/// One vertex of the topology tree.
struct Object {
  ObjType type = ObjType::Machine;
  int depth = 0;          ///< level in the tree; root is 0
  int logical_index = 0;  ///< rank of this object within its level
  int os_index = -1;      ///< OS numbering (meaningful for PUs), -1 if none
  Object* parent = nullptr;
  std::vector<std::unique_ptr<Object>> children;
  Bitmap cpuset;  ///< OS indices of all PUs below (or at) this object

  [[nodiscard]] bool is_leaf() const { return children.empty(); }
  [[nodiscard]] int arity() const { return static_cast<int>(children.size()); }
};

/// An immutable topology tree plus level-wise indexes.
///
/// Thread-safe for concurrent reads after construction.
class Topology {
 public:
  Topology(Topology&&) noexcept = default;
  Topology& operator=(Topology&&) noexcept = default;
  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  /// Build from a synthetic description: a whitespace-separated list of
  /// `type:count` terms, each meaning "every object of the previous level
  /// has `count` children of `type`". The root Machine is implicit and the
  /// last term must be `pu:N`.
  ///
  ///   Topology::synthetic("pack:24 core:8 pu:1")   // the paper's machine
  ///   Topology::synthetic("pack:2 numa:2 core:8 pu:2")
  ///
  /// Throws ContractError on malformed specs.
  static Topology synthetic(const std::string& spec);

  /// The evaluation machine of the paper: 24 packages × 8 cores, no SMT
  /// (192 PUs).
  static Topology paper_machine();

  /// Single-level machine with `npus` PUs directly under the root.
  static Topology flat(int npus);

  /// Detect the host machine from Linux sysfs; falls back to
  /// flat(hardware_concurrency) when sysfs is unavailable.
  static Topology host();

  /// Deep copy (useful before destructive transforms in tests).
  [[nodiscard]] Topology clone() const;

  [[nodiscard]] const Object& root() const { return *root_; }

  /// Number of levels (root level included); PUs live at depth() - 1.
  [[nodiscard]] int depth() const { return static_cast<int>(levels_.size()); }

  /// All objects at depth d, in logical order.
  [[nodiscard]] std::span<Object* const> level(int d) const;

  /// The leaves (PUs), in logical order.
  [[nodiscard]] std::span<Object* const> pus() const;

  [[nodiscard]] int num_pus() const {
    return static_cast<int>(pus().size());
  }

  /// arities()[d] is the number of children every object at depth d has.
  /// For irregular (detected) trees this is the maximum arity at the level.
  [[nodiscard]] std::vector<int> arities() const;

  /// True if every object at each level has the same number of children.
  [[nodiscard]] bool is_balanced() const;

  /// PU object with the given OS index, or nullptr.
  [[nodiscard]] const Object* pu_by_os(int os_index) const;

  /// Depth of the deepest common ancestor of two objects.
  [[nodiscard]] int common_ancestor_depth(const Object& a,
                                          const Object& b) const;

  /// Hop distance between two PUs: (depth_a - dca) + (depth_b - dca).
  /// Zero when a == b.
  [[nodiscard]] int hop_distance(const Object& a, const Object& b) const;

  /// Multi-line ASCII rendering of the tree (for logs and the explorer
  /// example).
  [[nodiscard]] std::string to_string() const;

  /// Graphviz "dot" rendering of the tree (lstopo-style), one node per
  /// object labelled with type, logical index and cpuset.
  [[nodiscard]] std::string to_dot() const;

  /// Compact synthetic-style summary ("pack:24 core:8 pu:1") for balanced
  /// trees; falls back to "irregular(<n> pus)" otherwise.
  [[nodiscard]] std::string summary() const;

  /// Assemble a topology from an externally built tree. Fills depths,
  /// logical indices, cpusets (from leaf os_index) and level indexes.
  /// Leaf objects must be PUs with distinct non-negative os_index.
  static Topology from_tree(std::unique_ptr<Object> root);

 private:
  Topology() = default;
  void index();  // populate levels_ and derived fields

  std::unique_ptr<Object> root_;
  std::vector<std::vector<Object*>> levels_;
};

}  // namespace orwl::topo
