#include "topo/bitmap.h"

#include <algorithm>
#include <bit>

#include "support/assert.h"

namespace orwl::topo {

namespace {
constexpr int kBits = 64;
}

Bitmap Bitmap::single(int bit) {
  Bitmap b;
  b.set(bit);
  return b;
}

Bitmap Bitmap::range(int first, int last) {
  ORWL_CHECK_MSG(first >= 0 && last >= first,
                 "bad range " << first << "-" << last);
  Bitmap b;
  for (int i = first; i <= last; ++i) b.set(i);
  return b;
}

Bitmap Bitmap::parse_list(const std::string& list) {
  Bitmap b;
  std::size_t pos = 0;
  while (pos < list.size()) {
    // Skip separators and whitespace.
    while (pos < list.size() && (list[pos] == ',' || list[pos] == ' ' ||
                                 list[pos] == '\n' || list[pos] == '\t'))
      ++pos;
    if (pos >= list.size()) break;
    std::size_t used = 0;
    const int lo = std::stoi(list.substr(pos), &used);
    ORWL_CHECK_MSG(lo >= 0, "negative cpu index in cpulist: " << list);
    pos += used;
    int hi = lo;
    if (pos < list.size() && list[pos] == '-') {
      ++pos;
      hi = std::stoi(list.substr(pos), &used);
      pos += used;
      ORWL_CHECK_MSG(hi >= lo, "descending range in cpulist: " << list);
    }
    for (int i = lo; i <= hi; ++i) b.set(i);
  }
  return b;
}

Bitmap Bitmap::parse_hex_mask(const std::string& mask) {
  // Split on commas; words are 32-bit chunks, most significant first.
  std::vector<std::uint32_t> words;
  std::string word;
  auto flush = [&] {
    ORWL_CHECK_MSG(!word.empty() && word.size() <= 8,
                   "bad cpumask word '" << word << "' in '" << mask << "'");
    std::uint32_t value = 0;
    for (char c : word) {
      int digit;
      if (c >= '0' && c <= '9') digit = c - '0';
      else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
      else
        ORWL_CHECK_MSG(false, "bad hex digit '" << c << "' in cpumask '"
                                                << mask << "'");
      value = value * 16 + static_cast<std::uint32_t>(digit);
    }
    words.push_back(value);
    word.clear();
  };
  for (char c : mask) {
    if (c == ',' ) {
      flush();
    } else if (c == '\n' || c == ' ' || c == '\t') {
      continue;
    } else {
      word.push_back(c);
    }
  }
  ORWL_CHECK_MSG(!word.empty(), "empty cpumask '" << mask << "'");
  flush();

  Bitmap b;
  // words[0] is the most significant chunk.
  const int nwords = static_cast<int>(words.size());
  for (int w = 0; w < nwords; ++w) {
    const std::uint32_t chunk = words[static_cast<std::size_t>(w)];
    const int base = (nwords - 1 - w) * 32;
    for (int bit = 0; bit < 32; ++bit)
      if ((chunk >> bit) & 1u) b.set(base + bit);
  }
  return b;
}

void Bitmap::ensure(int bit) {
  ORWL_CHECK_MSG(bit >= 0, "negative bit index " << bit);
  const std::size_t need = static_cast<std::size_t>(bit / kBits) + 1;
  if (words_.size() < need) words_.resize(need, 0);
}

void Bitmap::trim() {
  while (!words_.empty() && words_.back() == 0) words_.pop_back();
}

void Bitmap::set(int bit) {
  ensure(bit);
  words_[static_cast<std::size_t>(bit / kBits)] |= (1ull << (bit % kBits));
}

void Bitmap::clear(int bit) {
  ORWL_CHECK_MSG(bit >= 0, "negative bit index " << bit);
  const auto w = static_cast<std::size_t>(bit / kBits);
  if (w < words_.size()) {
    words_[w] &= ~(1ull << (bit % kBits));
    trim();
  }
}

bool Bitmap::test(int bit) const {
  if (bit < 0) return false;
  const auto w = static_cast<std::size_t>(bit / kBits);
  return w < words_.size() && (words_[w] >> (bit % kBits)) & 1u;
}

int Bitmap::count() const {
  int n = 0;
  for (auto w : words_) n += std::popcount(w);
  return n;
}

bool Bitmap::empty() const { return count() == 0; }

int Bitmap::first() const { return next(-1); }

int Bitmap::next(int prev) const {
  int start = prev + 1;
  if (start < 0) start = 0;
  for (auto w = static_cast<std::size_t>(start / kBits); w < words_.size();
       ++w) {
    std::uint64_t word = words_[w];
    if (w == static_cast<std::size_t>(start / kBits) && start % kBits != 0)
      word &= ~((1ull << (start % kBits)) - 1);
    if (word != 0)
      return static_cast<int>(w) * kBits + std::countr_zero(word);
  }
  return -1;
}

int Bitmap::last() const {
  for (std::size_t w = words_.size(); w-- > 0;) {
    if (words_[w] != 0)
      return static_cast<int>(w) * kBits + (kBits - 1) -
             std::countl_zero(words_[w]);
  }
  return -1;
}

Bitmap& Bitmap::operator|=(const Bitmap& o) {
  if (o.words_.size() > words_.size()) words_.resize(o.words_.size(), 0);
  for (std::size_t i = 0; i < o.words_.size(); ++i) words_[i] |= o.words_[i];
  return *this;
}

Bitmap& Bitmap::operator&=(const Bitmap& o) {
  const std::size_t n = std::min(words_.size(), o.words_.size());
  words_.resize(n);
  for (std::size_t i = 0; i < n; ++i) words_[i] &= o.words_[i];
  trim();
  return *this;
}

bool Bitmap::is_subset_of(const Bitmap& o) const {
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const std::uint64_t other = i < o.words_.size() ? o.words_[i] : 0;
    if ((words_[i] & ~other) != 0) return false;
  }
  return true;
}

bool Bitmap::intersects(const Bitmap& o) const {
  const std::size_t n = std::min(words_.size(), o.words_.size());
  for (std::size_t i = 0; i < n; ++i)
    if ((words_[i] & o.words_[i]) != 0) return true;
  return false;
}

bool Bitmap::operator==(const Bitmap& o) const {
  const std::size_t n = std::max(words_.size(), o.words_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t a = i < words_.size() ? words_[i] : 0;
    const std::uint64_t b = i < o.words_.size() ? o.words_[i] : 0;
    if (a != b) return false;
  }
  return true;
}

std::vector<int> Bitmap::to_vector() const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(count()));
  for (int b = first(); b >= 0; b = next(b)) out.push_back(b);
  return out;
}

std::string Bitmap::to_list_string() const {
  std::string out;
  int b = first();
  while (b >= 0) {
    int end = b;
    while (test(end + 1)) ++end;
    if (!out.empty()) out += ',';
    out += std::to_string(b);
    if (end > b) {
      out += '-';
      out += std::to_string(end);
    }
    b = next(end);
  }
  return out;
}

}  // namespace orwl::topo
