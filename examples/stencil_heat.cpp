// Stencil scenario: the paper's Livermore Kernel 23 workload on the host
// machine, comparing ORWL NoBind, ORWL Bind (Algorithm 1) and the
// fork-join (OpenMP-equivalent) baseline, with numerical verification
// against the blocked sequential reference.

#include <iostream>

#include "lk23/forkjoin_impl.h"
#include "lk23/kernel.h"
#include "lk23/orwl_impl.h"
#include "support/table.h"
#include "support/time.h"

int main(int argc, char** argv) {
  using namespace orwl;
  lk23::Spec spec;
  spec.n = argc > 1 ? std::atol(argv[1]) : 1024;
  spec.iterations = argc > 2 ? std::atoi(argv[2]) : 20;
  spec.bx = 4;
  spec.by = 2;

  const auto topo = topo::Topology::host();
  std::cout << "LK23 " << spec.n << "x" << spec.n << ", " << spec.iterations
            << " iterations, " << spec.bx * spec.by << " blocks, host has "
            << topo.num_pus() << " PUs\n\n";

  const auto ref = lk23::blocked_reference(spec);

  Table table({"implementation", "time", "max |err| vs reference",
               "threads"});

  const auto fj = lk23::run_forkjoin(spec, spec.bx * spec.by);
  table.add_row({"fork-join (OpenMP-equiv)", format_seconds(fj.seconds),
                 fmt(lk23::max_abs_diff(fj.za, ref), 17),
                 std::to_string(fj.num_threads)});

  const auto nobind = lk23::run_orwl(spec, place::Policy::None, topo);
  table.add_row({"ORWL NoBind", format_seconds(nobind.seconds),
                 fmt(lk23::max_abs_diff(nobind.za, ref), 17),
                 std::to_string(nobind.num_tasks)});

  const auto bind = lk23::run_orwl(spec, place::Policy::TreeMatch, topo);
  table.add_row({"ORWL Bind (Algorithm 1)", format_seconds(bind.seconds),
                 fmt(lk23::max_abs_diff(bind.za, ref), 17),
                 std::to_string(bind.num_tasks)});

  table.print(std::cout);

  std::cout << "\nORWL Bind used control strategy '"
            << treematch::to_string(bind.plan.treematch.control_used)
            << "', oversubscribed="
            << (bind.plan.treematch.oversubscribed ? "yes" : "no")
            << " (threads/PU=" << bind.plan.treematch.threads_per_leaf
            << ")\n";
  return 0;
}
