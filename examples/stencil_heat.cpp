// Stencil scenario: the paper's Livermore Kernel 23 workload on the host
// machine, comparing ORWL NoBind, ORWL Bind (Algorithm 1) and the
// fork-join (OpenMP-equivalent) baseline, with numerical verification
// against the blocked sequential reference.
//
// The ORWL rows run the shared Program definition
// (lk23::define_lk23_program) on RuntimeBackends — the same definition the
// Figure-1 benches execute natively and feed to the simulator.

#include <iostream>

#include "lk23/forkjoin_impl.h"
#include "lk23/kernel.h"
#include "lk23/lk23_program.h"
#include "support/table.h"
#include "support/time.h"

int main(int argc, char** argv) {
  using namespace orwl;
  lk23::Spec spec;
  spec.n = argc > 1 ? std::atol(argv[1]) : 1024;
  spec.iterations = argc > 2 ? std::atoi(argv[2]) : 20;
  spec.bx = 4;
  spec.by = 2;

  const auto topo = topo::Topology::host();
  std::cout << "LK23 " << spec.n << "x" << spec.n << ", " << spec.iterations
            << " iterations, " << spec.bx * spec.by << " blocks, host has "
            << topo.num_pus() << " PUs\n\n";

  const auto ref = lk23::blocked_reference(spec);

  Table table({"implementation", "time", "max |err| vs reference",
               "threads"});

  const auto fj = lk23::run_forkjoin(spec, spec.bx * spec.by);
  table.add_row({"fork-join (OpenMP-equiv)", format_seconds(fj.seconds),
                 fmt(lk23::max_abs_diff(fj.za, ref), 17),
                 std::to_string(fj.num_threads)});

  RuntimeBackend nobind_be;
  lk23::ProgramDef nobind_def;
  const RunReport nobind = lk23::run_lk23_program(
      spec, place::Policy::None, nobind_be, &nobind_def);
  table.add_row(
      {"ORWL NoBind", format_seconds(nobind.seconds),
       fmt(lk23::max_abs_diff(lk23::fetch_field(nobind_be, nobind_def), ref),
           17),
       std::to_string(nobind_def.num_tasks)});

  RuntimeBackend bind_be;
  lk23::ProgramDef bind_def;
  const RunReport bind = lk23::run_lk23_program(
      spec, place::Policy::TreeMatch, bind_be, &bind_def);
  table.add_row(
      {"ORWL Bind (Algorithm 1)", format_seconds(bind.seconds),
       fmt(lk23::max_abs_diff(lk23::fetch_field(bind_be, bind_def), ref),
           17),
       std::to_string(bind_def.num_tasks)});

  table.print(std::cout);

  std::cout << "\nORWL Bind used control strategy '"
            << treematch::to_string(bind.plan.treematch.control_used)
            << "', oversubscribed="
            << (bind.plan.treematch.oversubscribed ? "yes" : "no")
            << " (threads/PU=" << bind.plan.treematch.threads_per_leaf
            << ")\n";
  return 0;
}
