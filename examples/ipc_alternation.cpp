// Two-process ORWL: parent and child alternate Write sections on one
// shared counter living in an anonymous memfd segment (the shm transport,
// src/ipc/). This is both the demo for docs/ipc.md and the executable
// tools/check_ipc.py drives under ctest.
//
// Usage: ipc_alternation [ok|crash-peer|crash-owner] [rounds]
//
//   ok           clean run: owner (parent) and peer (child) each bump the
//                counter `rounds` times in strict alternation; exit 0 when
//                the final value and the observed parities check out.
//   crash-peer   the child (peer) SIGKILLs itself INSIDE a section; the
//                parent (owner) must detect the dead peer within the
//                liveness tick and fail-stop with exit code 75.
//   crash-owner  roles swapped — the child plays owner and dies holding
//                the arbitration state; the surviving parent (peer) must
//                detect it and fail-stop with exit code 75.
//
// The fork happens while each process is still single-threaded (before
// any Runtime exists), which is the documented fork-safety rule for the
// shm transport (docs/ipc.md).

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#ifdef __linux__
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <span>
#include <string>
#include <thread>

#include "ipc/channel.h"
#include "ipc/transport.h"
#include "orwl/runtime.h"

namespace {

using orwl::AccessMode;
using orwl::HandleId;
using orwl::LocationId;
using orwl::Runtime;
using orwl::RuntimeOptions;
using orwl::TaskId;

constexpr int kDefaultRounds = 64;

std::uint64_t& counter_of(std::span<std::byte> bytes) {
  return *reinterpret_cast<std::uint64_t*>(bytes.data());
}

RuntimeOptions shm_options() {
  RuntimeOptions opts;
  opts.control = RuntimeOptions::ControlMode::Direct;
  opts.transport = RuntimeOptions::Transport::Shm;
  return opts;
}

/// The owner hosts the FIFO: prime first, publish OwnerReady, run, then
/// wait for the peer's Bye and verify the buffer. `crash_at` >= 0 kills
/// this process inside that iteration's section (crash-owner mode).
int run_owner(orwl::ipc::Channel& ch, int rounds, int crash_at) {
  Runtime rt(shm_options());
  const LocationId loc =
      rt.add_shared_location(ch.location_bytes(0), "counter");
  orwl::ipc::OwnerEndpoint ep(ch, rt);
  ep.bind_location(0, loc);

  bool parity_ok = true;
  const TaskId t = rt.add_task("owner", [&](orwl::TaskContext& ctx) {
    orwl::Handle& h = ctx.handle(0);
    for (int i = 0; i < rounds; ++i) {
      std::uint64_t& v = counter_of(h.acquire());
      if (i == crash_at) ::raise(SIGKILL);  // die mid-section
      // Owner goes first: it must see an even value, 2*i exactly.
      if (v != 2 * static_cast<std::uint64_t>(i)) parity_ok = false;
      ++v;
      if (i + 1 < rounds)
        h.release_and_renew();
      else
        h.release();
    }
  });
  const HandleId h = rt.add_handle(t, loc, AccessMode::Write,
                                   /*prime=*/false);
  // Manual prime BEFORE OwnerReady: the canonical cross-process order is
  // all owner handles, then the peer's (see docs/ipc.md).
  rt.handle(h).request();
  ep.start();
  // Barrier: the peer's primes must be in the FIFOs before any section
  // runs, or the first release would re-grant the owner immediately.
  if (!ep.wait_peer_attached()) {
    std::fprintf(stderr, "owner: peer never attached\n");
    return 2;
  }
  rt.run();

  if (!ep.wait_peer_done()) {
    std::fprintf(stderr, "owner: peer never detached cleanly\n");
    return 2;
  }
  ep.stop();
  const std::uint64_t final_value = counter_of(rt.location_data(loc));
  const auto want = static_cast<std::uint64_t>(2 * rounds);
  if (!parity_ok || final_value != want) {
    std::fprintf(stderr, "owner: bad alternation (final %llu, want %llu)\n",
                 static_cast<unsigned long long>(final_value),
                 static_cast<unsigned long long>(want));
    return 2;
  }
  return 0;
}

/// The peer forwards its lock traffic through the ring; its handles and
/// task body are indistinguishable from the in-process version.
int run_peer(int fd, int rounds, int crash_at) {
  orwl::ipc::Channel ch = orwl::ipc::Channel::attach_fd(fd);
  Runtime rt(shm_options());
  orwl::ipc::PeerEndpoint ep(ch, rt);
  const LocationId loc = ep.add_location(0);

  bool parity_ok = true;
  const TaskId t = rt.add_task("peer", [&](orwl::TaskContext& ctx) {
    orwl::Handle& h = ctx.handle(0);
    for (int i = 0; i < rounds; ++i) {
      std::uint64_t& v = counter_of(h.acquire());
      if (i == crash_at) ::raise(SIGKILL);  // die mid-section
      // Peer goes second each round: odd value, 2*i + 1 exactly.
      if (v != 2 * static_cast<std::uint64_t>(i) + 1) parity_ok = false;
      ++v;
      if (i + 1 < rounds)
        h.release_and_renew();
      else
        h.release();
    }
  });
  const HandleId h = rt.add_handle(t, loc, AccessMode::Write,
                                   /*prime=*/false);
  ep.start();
  // Manual prime after the OwnerReady handshake, then announce it — the
  // owner's wait_peer_attached() barrier releases once it is queued.
  rt.handle(h).request();
  ep.announce_primed();
  rt.run();
  ep.stop();
  return parity_ok ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "ok";
  const int rounds = argc > 2 ? std::atoi(argv[2]) : kDefaultRounds;
  if (mode != "ok" && mode != "crash-peer" && mode != "crash-owner") {
    std::fprintf(stderr,
                 "usage: %s [ok|crash-peer|crash-owner] [rounds]\n", argv[0]);
    return 64;
  }
  // Nothing here may hang: a wedged run is itself a transport bug.
  ::alarm(120);

  // Segment + channel exist before the fork so the memfd is inherited;
  // both processes are single-threaded at this point (fork safety).
  orwl::ipc::Channel ch = orwl::ipc::Channel::create(
      {.shm_name = {},  // anonymous memfd
       .ring_capacity = 64,
       .locations = {{.name = "counter", .bytes = sizeof(std::uint64_t)}}});

  const int crash_at = rounds / 2;
  const bool child_is_owner = mode == "crash-owner";
  const pid_t child = ::fork();
  if (child < 0) {
    std::perror("fork");
    return 71;
  }

  if (child == 0) {
    ::alarm(120);  // alarms do not survive fork; re-arm the watchdog
    // Child never returns into the parent's stdio/atexit state.
    if (child_is_owner)
      ::_exit(run_owner(ch, rounds, crash_at));
    ::_exit(run_peer(ch.shm_fd(), rounds, mode == "crash-peer" ? crash_at : -1));
  }

  // Reap the child the moment it dies: a zombie still passes the
  // kill(pid, 0) liveness probe, which would blind the survivor's
  // dead-peer detection in the crash modes (see docs/ipc.md).
  int status = 0;
  bool reaped = false;
  std::thread reaper([&] { reaped = ::waitpid(child, &status, 0) == child; });

  int rc;
  if (child_is_owner) {
    // Parent is the peer and must SURVIVE the owner's crash long enough
    // to detect it — the default failure handler _Exit(75)s for us.
    rc = run_peer(ch.shm_fd(), rounds, -1);
  } else {
    rc = run_owner(ch, rounds, -1);
  }

  reaper.join();
  if (!reaped) {
    std::perror("waitpid");
    return 71;
  }
  if (mode == "ok" && (!WIFEXITED(status) || WEXITSTATUS(status) != 0)) {
    std::fprintf(stderr, "child failed (status 0x%x)\n", status);
    return 2;
  }
  std::printf("ipc_alternation %s: %d rounds ok\n", mode.c_str(), rounds);
  return rc;
}

#else  // !__linux__

int main() {
  std::fprintf(stderr, "ipc_alternation: shm transport is Linux-only\n");
  return 0;
}

#endif
