// Topology explorer: prints the detected host topology and the paper's
// 192-core machine, then shows what Algorithm 1 does with a stencil
// application on each — the mapping, its locality metrics, and how the
// alternative policies compare.
//
// The stencil is declared as an orwl::Program with no bodies: locations
// and access declarations alone carry the sharing structure, so the
// communication matrix and the placement plans come straight from the
// declaration — no runtime, no execution. (Only Program::run needs
// bodies.)

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "comm/metrics.h"
#include "orwl/program.h"
#include "support/table.h"

namespace {

using namespace orwl;

// A blocks_x × blocks_y halo-exchange stencil: every block task exports
// one face location per existing neighbour (4-neighbourhood) and reads the
// neighbours' opposing faces.
Program stencil_program(int blocks_x, int blocks_y, long block_rows,
                        long block_cols) {
  Program p;
  const int dx[] = {0, 0, -1, +1};           // N, S, W, E
  const int dy[] = {-1, +1, 0, 0};
  auto face_elems = [&](int d) {
    return static_cast<std::size_t>(d < 2 ? block_cols : block_rows);
  };
  auto block_id = [&](int x, int y) { return y * blocks_x + x; };
  auto exists = [&](int x, int y) {
    return x >= 0 && y >= 0 && x < blocks_x && y < blocks_y;
  };

  // faces[b][d]: block b's export towards direction d.
  std::vector<std::array<Location<double>, 4>> faces(
      static_cast<std::size_t>(blocks_x * blocks_y));
  for (int y = 0; y < blocks_y; ++y)
    for (int x = 0; x < blocks_x; ++x)
      for (int d = 0; d < 4; ++d) {
        if (!exists(x + dx[d], y + dy[d])) continue;
        const int b = block_id(x, y);
        faces[static_cast<std::size_t>(b)][static_cast<std::size_t>(d)] =
            p.location<double>(face_elems(d),
                               "face" + std::to_string(b) + "d" +
                                   std::to_string(d));
      }
  for (int y = 0; y < blocks_y; ++y)
    for (int x = 0; x < blocks_x; ++x) {
      const int b = block_id(x, y);
      TaskBuilder t = p.task("block" + std::to_string(b));
      for (int d = 0; d < 4; ++d) {
        const auto& own =
            faces[static_cast<std::size_t>(b)][static_cast<std::size_t>(d)];
        if (own.valid()) t.writes(own);
        if (!exists(x + dx[d], y + dy[d])) continue;
        const int nb = block_id(x + dx[d], y + dy[d]);
        const int opp = d ^ 1;  // N<->S, W<->E
        t.reads(faces[static_cast<std::size_t>(nb)]
                     [static_cast<std::size_t>(opp)]);
      }
    }
  return p;
}

void explore(const char* name, const topo::Topology& topo) {
  std::cout << "=== " << name << " ===\n";
  std::cout << "depth " << topo.depth() << ", " << topo.num_pus()
            << " PUs, arities:";
  for (int a : topo.arities()) std::cout << ' ' << a;
  std::cout << (topo.is_balanced() ? " (balanced)" : " (irregular)") << "\n";
  if (topo.num_pus() <= 16) std::cout << topo.to_string();

  // A stencil as large as the machine, declared as a Program.
  const int pus = topo.num_pus();
  const int side = std::max(1, static_cast<int>(std::sqrt(double(pus))));
  const int blocks_y = side;
  const int blocks_x = pus / side;
  const Program p = stencil_program(blocks_x, blocks_y, 256, 256);
  const auto m = p.static_comm_matrix();

  Table table({"policy", "hop-bytes (KiB)", "package-local %"});
  for (place::Policy policy :
       {place::Policy::TreeMatch, place::Policy::Compact,
        place::Policy::Scatter, place::Policy::Random}) {
    const place::Plan plan = place::compute_plan(policy, topo, m);
    const double hb = comm::hop_bytes(topo, m, plan.compute_pu);
    const double local =
        comm::locality_fraction(topo, m, plan.compute_pu, 1);
    table.add_row({place::to_string(policy), fmt(hb / 1024.0, 1),
                   fmt(100.0 * local, 1)});
  }
  std::cout << "\nstencil of " << p.num_tasks() << " threads ("
            << blocks_x << "x" << blocks_y << " blocks, "
            << p.num_locations() << " face locations):\n";
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  explore("host machine (detected)", topo::Topology::host());
  explore("paper machine (24 sockets x 8 cores)",
          topo::Topology::paper_machine());
  explore("SMT machine (2 sockets x 8 cores x 2 threads)",
          topo::Topology::synthetic("pack:2 core:8 pu:2"));
  return 0;
}
