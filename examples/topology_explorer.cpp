// Topology explorer: prints the detected host topology and the paper's
// 192-core machine, then shows what Algorithm 1 does with a stencil
// application on each — the mapping, its locality metrics, and how the
// alternative policies compare.

#include <cmath>
#include <iostream>

#include "comm/metrics.h"
#include "comm/patterns.h"
#include "place/placement.h"
#include "support/table.h"

namespace {

using namespace orwl;

void explore(const char* name, const topo::Topology& topo) {
  std::cout << "=== " << name << " ===\n";
  std::cout << "depth " << topo.depth() << ", " << topo.num_pus()
            << " PUs, arities:";
  for (int a : topo.arities()) std::cout << ' ' << a;
  std::cout << (topo.is_balanced() ? " (balanced)" : " (irregular)") << "\n";
  if (topo.num_pus() <= 16) std::cout << topo.to_string();

  // A stencil as large as the machine.
  const int p = topo.num_pus();
  const int side = std::max(1, static_cast<int>(std::sqrt(double(p))));
  comm::StencilSpec spec;
  spec.blocks_y = side;
  spec.blocks_x = p / side;
  spec.block_rows = 256;
  spec.block_cols = 256;
  const int threads = spec.blocks_x * spec.blocks_y;
  const auto m = comm::stencil_matrix(spec);

  Table table({"policy", "hop-bytes (KiB)", "package-local %"});
  for (place::Policy policy :
       {place::Policy::TreeMatch, place::Policy::Compact,
        place::Policy::Scatter, place::Policy::Random}) {
    const place::Plan plan = place::compute_plan(policy, topo, m);
    const double hb = comm::hop_bytes(topo, m, plan.compute_pu);
    const double local =
        comm::locality_fraction(topo, m, plan.compute_pu, 1);
    table.add_row({place::to_string(policy), fmt(hb / 1024.0, 1),
                   fmt(100.0 * local, 1)});
  }
  std::cout << "\nstencil of " << threads << " threads ("
            << spec.blocks_x << "x" << spec.blocks_y << " blocks):\n";
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  explore("host machine (detected)", topo::Topology::host());
  explore("paper machine (24 sockets x 8 cores)",
          topo::Topology::paper_machine());
  explore("SMT machine (2 sockets x 8 cores x 2 threads)",
          topo::Topology::synthetic("pack:2 core:8 pu:2"));
  return 0;
}
