// Pipeline scenario: a 3-stage image-processing-style pipeline over a
// stream of frames, built on ORWL locations as bounded hand-off buffers.
// Stage 0 produces frames, stage 1 blurs, stage 2 reduces to a checksum.
// The ordered FIFO semantics give lock-step hand-off without any explicit
// condition-variable code, and TreeMatch places the stages close to each
// other.

#include <iostream>
#include <numeric>

#include "orwl/runtime.h"
#include "place/placement.h"
#include "support/table.h"

namespace {

constexpr int kFrames = 32;
constexpr int kFramePixels = 4096;

}  // namespace

int main() {
  using namespace orwl;
  Runtime rt;

  const LocationId raw = rt.add_location(kFramePixels * sizeof(float), "raw");
  const LocationId blurred =
      rt.add_location(kFramePixels * sizeof(float), "blurred");
  const LocationId sums =
      rt.add_location(kFrames * sizeof(double), "sums");

  // Stage 0: producer writes a synthetic frame per round.
  rt.add_task("produce", [](TaskContext& ctx) {
    Handle& out = ctx.handle(0);
    for (int f = 0; f < kFrames; ++f) {
      auto frame = as_span<float>(out.acquire());
      for (int p = 0; p < kFramePixels; ++p)
        frame[static_cast<std::size_t>(p)] =
            static_cast<float>((p * 31 + f * 17) % 256) / 255.0f;
      f + 1 == kFrames ? out.release() : out.release_and_renew();
    }
  });

  // Stage 1: 3-tap blur raw -> blurred.
  rt.add_task("blur", [](TaskContext& ctx) {
    Handle& in = ctx.handle(1);
    Handle& out = ctx.handle(2);
    std::vector<float> local(kFramePixels);
    for (int f = 0; f < kFrames; ++f) {
      const bool last = f + 1 == kFrames;
      {
        auto frame =
            as_span<const float>(std::span<const std::byte>(in.acquire()));
        std::copy(frame.begin(), frame.end(), local.begin());
        last ? in.release() : in.release_and_renew();
      }
      auto dst = as_span<float>(out.acquire());
      for (int p = 0; p < kFramePixels; ++p) {
        const float l = local[static_cast<std::size_t>(std::max(0, p - 1))];
        const float c = local[static_cast<std::size_t>(p)];
        const float r = local[static_cast<std::size_t>(
            std::min(kFramePixels - 1, p + 1))];
        dst[static_cast<std::size_t>(p)] = (l + c + r) / 3.0f;
      }
      last ? out.release() : out.release_and_renew();
    }
  });

  // Stage 2: reduce each blurred frame to a sum; store per-frame results.
  rt.add_task("reduce", [](TaskContext& ctx) {
    Handle& in = ctx.handle(3);
    Handle& out = ctx.handle(4);
    for (int f = 0; f < kFrames; ++f) {
      const bool last = f + 1 == kFrames;
      double sum = 0.0;
      {
        auto frame =
            as_span<const float>(std::span<const std::byte>(in.acquire()));
        sum = std::accumulate(frame.begin(), frame.end(), 0.0);
        last ? in.release() : in.release_and_renew();
      }
      auto results = as_span<double>(out.acquire());
      results[static_cast<std::size_t>(f)] = sum;
      last ? out.release() : out.release_and_renew();
    }
  });

  // Canonical order per location: writer before reader.
  rt.add_handle(0, raw, AccessMode::Write);      // handle 0: produce->raw
  rt.add_handle(1, raw, AccessMode::Read);       // handle 1: blur<-raw
  rt.add_handle(1, blurred, AccessMode::Write);  // handle 2: blur->blurred
  rt.add_handle(2, blurred, AccessMode::Read);   // handle 3: reduce<-blurred
  rt.add_handle(2, sums, AccessMode::Write);     // handle 4: reduce->sums

  const auto topo = topo::Topology::host();
  const place::Plan plan = place::compute_plan(
      place::Policy::TreeMatch, topo, rt.static_comm_matrix());
  place::apply_plan(plan, topo, rt);

  rt.run();

  const auto results = as_span<double>(rt.location_data(sums));
  std::cout << "pipeline processed " << kFrames << " frames of "
            << kFramePixels << " pixels\n";
  std::cout << "first sums:";
  for (int f = 0; f < 5; ++f)
    std::cout << ' ' << results[static_cast<std::size_t>(f)];
  std::cout << "\nplacement:";
  for (int t = 0; t < rt.num_tasks(); ++t)
    std::cout << ' ' << rt.task_name(t) << "->PU"
              << plan.compute_pu[static_cast<std::size_t>(t)];
  std::cout << "\ntotal grants: "
            << rt.stats().read_grants() + rt.stats().write_grants() << '\n';

  // Sanity: frame sums must be stable and positive.
  for (int f = 0; f < kFrames; ++f) {
    if (results[static_cast<std::size_t>(f)] <= 0.0) {
      std::cerr << "BUG: frame " << f << " sum not positive\n";
      return 1;
    }
  }
  std::cout << "all frame checksums OK\n";
  return 0;
}
