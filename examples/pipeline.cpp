// Pipeline scenario: a 3-stage image-processing-style pipeline over a
// stream of frames, built on ORWL locations as bounded hand-off buffers.
// Stage 0 produces frames, stage 1 blurs, stage 2 reduces to a checksum.
// The ordered FIFO semantics give lock-step hand-off without any explicit
// condition-variable code, and TreeMatch places the stages close to each
// other. Written against the typed Program API: the frame buffers are
// Location<float>, the per-frame result store is Location<double>, and the
// sections renew themselves from frame to frame.

#include <algorithm>
#include <iostream>
#include <numeric>

#include "orwl/backend.h"
#include "orwl/program.h"

namespace {

constexpr int kFrames = 32;
constexpr int kFramePixels = 4096;

}  // namespace

int main() {
  using namespace orwl;
  Program p;

  const Location<float> raw = p.location<float>(kFramePixels, "raw");
  const Location<float> blurred = p.location<float>(kFramePixels, "blurred");
  const Location<double> sums = p.location<double>(kFrames, "sums");

  // Stage 0: producer writes a synthetic frame per round.
  p.task("produce").writes(raw).iterations(kFrames).body([raw](Step& s) {
    const int f = s.round();
    s.write(raw, [f](std::span<float> frame) {
      for (int px = 0; px < kFramePixels; ++px)
        frame[static_cast<std::size_t>(px)] =
            static_cast<float>((px * 31 + f * 17) % 256) / 255.0f;
    });
  });

  // Stage 1: 3-tap blur raw -> blurred, via a local scratch copy so the
  // read lock is held only for the copy.
  p.task("blur")
      .reads(raw)
      .writes(blurred)
      .iterations(kFrames)
      .body([raw, blurred,
             local = std::vector<float>(kFramePixels)](Step& s) mutable {
        s.read(raw, [&](std::span<const float> frame) {
          std::copy(frame.begin(), frame.end(), local.begin());
        });
        s.write(blurred, [&](std::span<float> dst) {
          for (int px = 0; px < kFramePixels; ++px) {
            const float l = local[static_cast<std::size_t>(std::max(0, px - 1))];
            const float c = local[static_cast<std::size_t>(px)];
            const float r = local[static_cast<std::size_t>(
                std::min(kFramePixels - 1, px + 1))];
            dst[static_cast<std::size_t>(px)] = (l + c + r) / 3.0f;
          }
        });
      });

  // Stage 2: reduce each blurred frame to a sum; store per-frame results.
  p.task("reduce")
      .reads(blurred)
      .writes(sums)
      .iterations(kFrames)
      .body([blurred, sums](Step& s) {
        const double sum = s.read(blurred, [](std::span<const float> frame) {
          return std::accumulate(frame.begin(), frame.end(), 0.0);
        });
        const int f = s.round();
        s.write(sums, [f, sum](std::span<double> results) {
          results[static_cast<std::size_t>(f)] = sum;
        });
      });

  p.place(place::Policy::TreeMatch);

  RuntimeBackend backend;
  const RunReport rep = p.run(backend);

  const std::vector<double> results = backend.fetch(sums);
  std::cout << "pipeline processed " << kFrames << " frames of "
            << kFramePixels << " pixels\n";
  std::cout << "first sums:";
  for (int f = 0; f < 5; ++f)
    std::cout << ' ' << results[static_cast<std::size_t>(f)];
  std::cout << "\nplacement:";
  for (int t = 0; t < p.num_tasks(); ++t)
    std::cout << ' ' << p.task_decls()[static_cast<std::size_t>(t)].name
              << "->PU" << rep.plan.compute_pu[static_cast<std::size_t>(t)];
  std::cout << "\ntotal grants: " << rep.grants << '\n';

  // Sanity: frame sums must be stable and positive.
  for (int f = 0; f < kFrames; ++f) {
    if (results[static_cast<std::size_t>(f)] <= 0.0) {
      std::cerr << "BUG: frame " << f << " sum not positive\n";
      return 1;
    }
  }
  std::cout << "all frame checksums OK\n";
  return 0;
}
