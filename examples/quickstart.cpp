// Quickstart: the smallest complete ORWL program with topology-aware
// placement.
//
//   1. create locations (shared resources guarded by ordered RW locks),
//   2. create tasks and register handles (the registration order is the
//      canonical FIFO priming order),
//   3. extract the communication matrix, run Algorithm 1, bind,
//   4. run and inspect.
//
// The program is a 4-stage ring: each task reads its input location and
// writes its output location, 10 rounds.

#include <iostream>

#include "orwl/runtime.h"
#include "place/placement.h"
#include "support/table.h"

int main() {
  using namespace orwl;
  constexpr int kStages = 4;
  constexpr int kRounds = 10;

  Runtime rt;

  // 1. Locations: one long per pipeline stage.
  std::vector<LocationId> locs;
  for (int i = 0; i < kStages; ++i)
    locs.push_back(rt.add_location(sizeof(long), "stage" + std::to_string(i)));

  // 2. Tasks: stage i reads locs[i], writes locs[i+1].
  for (int i = 0; i < kStages; ++i) {
    rt.add_task("stage" + std::to_string(i), [i](TaskContext& ctx) {
      Handle& rd = ctx.handle(2 * i);
      Handle& wr = ctx.handle(2 * i + 1);
      for (int round = 0; round < kRounds; ++round) {
        const bool last = round + 1 == kRounds;
        long v;
        {
          auto in = rd.acquire();
          v = as_span<const long>(std::span<const std::byte>(in))[0];
          last ? rd.release() : rd.release_and_renew();
        }
        auto out = wr.acquire();
        as_span<long>(out)[0] = v + 1;
        last ? wr.release() : wr.release_and_renew();
      }
    });
  }
  for (int i = 0; i < kStages; ++i) {
    rt.add_handle(i, locs[static_cast<std::size_t>(i)], AccessMode::Read);
    rt.add_handle(i, locs[static_cast<std::size_t>((i + 1) % kStages)],
                  AccessMode::Write);
  }

  // 3. Topology-aware placement (the paper's Algorithm 1).
  const auto topo = topo::Topology::host();
  const comm::CommMatrix m = rt.static_comm_matrix();
  const place::Plan plan = place::compute_plan(place::Policy::TreeMatch,
                                               topo, m);
  place::apply_plan(plan, topo, rt);

  std::cout << "host topology: " << topo.num_pus() << " PUs, depth "
            << topo.depth() << "\n\ncommunication matrix (bytes/round):\n";
  m.save_csv(std::cout);

  Table table({"task", "compute PU", "control PU"});
  for (int t = 0; t < kStages; ++t)
    table.add_row({rt.task_name(t),
                   std::to_string(plan.compute_pu[static_cast<std::size_t>(t)]),
                   std::to_string(plan.control_pu[static_cast<std::size_t>(t)])});
  std::cout << "\nplacement (control strategy: "
            << treematch::to_string(plan.treematch.control_used) << "):\n";
  table.print(std::cout);

  // 4. Run.
  rt.run();
  std::cout << "\nafter " << kRounds << " rounds, stage values:";
  for (int i = 0; i < kStages; ++i)
    std::cout << ' '
              << as_span<long>(rt.location_data(
                     locs[static_cast<std::size_t>(i)]))[0];
  std::cout << "\ngrants delivered: "
            << rt.stats().read_grants() + rt.stats().write_grants() << '\n';
  return 0;
}
