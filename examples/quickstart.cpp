// Quickstart: the smallest complete ORWL program with topology-aware
// placement, written against the typed Program API.
//
//   1. declare typed locations (shared resources guarded by ordered RW
//      locks),
//   2. declare tasks fluently — reads/writes wire the handles, the body
//      sees typed spans through self-renewing RAII sections,
//   3. ask for placement in one call (comm matrix -> Algorithm 1 -> bind),
//   4. pick a backend, run and inspect.
//
// The program is a 4-stage ring: each task reads its input location and
// writes its output location, 10 rounds. Swap RuntimeBackend for a
// SimBackend to predict the same program on a machine you do not have.
//
// The region between the [quickstart-begin]/[quickstart-end] markers is
// the exact snippet shown in README.md — tools/check_docs.py keeps the
// two in sync, so the README example always compiles.

#include <iostream>

#include "orwl/backend.h"
#include "orwl/program.h"
#include "support/table.h"

int main() {
  using namespace orwl;
  // [quickstart-begin]
  constexpr int kStages = 4;
  constexpr int kRounds = 10;

  Program p;

  // 1. Locations: one long per pipeline stage.
  std::vector<Location<long>> stage;
  for (int i = 0; i < kStages; ++i)
    stage.push_back(p.location<long>(1, "stage" + std::to_string(i)));

  // 2. Tasks: stage i reads stage[i], writes stage[i+1]. Sections acquire
  // on creation, renew themselves every round and release on the last one
  // — the iterative lock discipline is enforced by the type system.
  for (int i = 0; i < kStages; ++i) {
    const Location<long> in = stage[static_cast<std::size_t>(i)];
    const Location<long> out =
        stage[static_cast<std::size_t>((i + 1) % kStages)];
    p.task("stage" + std::to_string(i))
        .reads(in)
        .writes(out)
        .iterations(kRounds)
        .body([in, out](Step& s) {
          const long v =
              s.read(in, [](std::span<const long> x) { return x[0]; });
          s.write(out, [v](std::span<long> x) { x[0] = v + 1; });
        });
  }

  // 3. Topology-aware placement (the paper's Algorithm 1), one call.
  p.place(place::Policy::TreeMatch);

  // 4. Run on the real runtime of this machine.
  RuntimeBackend backend;
  const RunReport rep = p.run(backend);
  // [quickstart-end]

  const auto& topo = backend.topology();
  const comm::CommMatrix m = p.static_comm_matrix();

  std::cout << "host topology: " << topo.num_pus() << " PUs, depth "
            << topo.depth() << "\n\ncommunication matrix (bytes/round):\n";
  m.save_csv(std::cout);

  Table table({"task", "compute PU", "control PU"});
  for (int t = 0; t < p.num_tasks(); ++t)
    table.add_row(
        {p.task_decls()[static_cast<std::size_t>(t)].name,
         std::to_string(rep.plan.compute_pu[static_cast<std::size_t>(t)]),
         std::to_string(rep.plan.control_pu[static_cast<std::size_t>(t)])});
  std::cout << "\nplacement (control strategy: "
            << treematch::to_string(rep.plan.treematch.control_used)
            << "):\n";
  table.print(std::cout);

  std::cout << "\nafter " << kRounds << " rounds, stage values:";
  for (const Location<long>& loc : stage)
    std::cout << ' ' << backend.fetch(loc)[0];
  std::cout << "\ngrants delivered: " << rep.grants << '\n';
  return 0;
}
