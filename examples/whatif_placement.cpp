// What-if scenario: use the NUMA cost model to predict how a workload
// would behave on machines you do not have — the workflow the simulator
// enables beyond reproducing the paper's figure.
//
// The program builds the paper's LK23 decomposition and asks, for a range
// of hypothetical machines: what does topology-aware placement buy on this
// box, and where does the naive OpenMP version stop scaling?

#include <iostream>

#include "sim/lk23_model.h"
#include "support/table.h"

int main() {
  using namespace orwl;

  struct Machine {
    const char* name;
    const char* spec;
  };
  const Machine machines[] = {
      {"laptop (1 socket x 8 cores)", "pack:1 core:8 pu:1"},
      {"workstation (2 x 16)", "pack:2 core:16 pu:1"},
      {"server (4 x 16, SMT-2)", "pack:4 core:16 pu:2"},
      {"paper SMP (24 x 8)", "pack:24 core:8 pu:1"},
      {"fat NUMA (8 x 24)", "pack:8 core:24 pu:1"},
  };

  std::cout << "What-if: LK23 (16384^2, 100 iterations), one block per "
               "core, three implementations\npredicted by the calibrated "
               "cost model on hypothetical machines\n\n";

  Table table({"machine", "cores", "OpenMP [s]", "ORWL NoBind [s]",
               "ORWL Bind [s]", "Bind payoff"});
  for (const Machine& m : machines) {
    const auto topo = topo::Topology::synthetic(m.spec);
    const sim::LinkCost cost = sim::LinkCost::defaults_for(topo);
    sim::Lk23SimSpec spec;
    // Use physical cores (not SMT threads) as blocks, like the paper.
    int cores = topo.num_pus();
    if (!topo.arities().empty() && topo.arities().back() > 1)
      cores /= topo.arities().back();
    spec.tasks = cores;
    const double omp =
        sim::simulate_lk23(sim::Lk23Impl::OpenMP, topo, cost, spec)
            .total_seconds;
    const double nobind =
        sim::simulate_lk23(sim::Lk23Impl::OrwlNoBind, topo, cost, spec)
            .total_seconds;
    const double bind =
        sim::simulate_lk23(sim::Lk23Impl::OrwlBind, topo, cost, spec)
            .total_seconds;
    const double payoff = std::min(omp, nobind) / bind;
    table.add_row({m.name, std::to_string(cores), fmt(omp, 1),
                   fmt(nobind, 1), fmt(bind, 1), fmt(payoff, 2) + "x"});
  }
  table.print(std::cout);
  std::cout << "\nReading: on one socket placement buys almost nothing "
               "(the paper's observation);\nthe payoff appears with the "
               "second socket and grows with NUMA depth.\n";
  return 0;
}
