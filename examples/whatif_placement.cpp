// What-if scenario: use the NUMA cost model to predict how a workload
// would behave on machines you do not have — the workflow the simulator
// enables beyond reproducing the paper's figure.
//
// The program is the shared LK23 Program definition; for every
// hypothetical machine a SimBackend predicts it unplaced (ORWL NoBind) and
// TreeMatch-placed (ORWL Bind). The identical definition runs for real in
// stencil_heat / fig1_livermore_real — only the backend differs here. The
// OpenMP column keeps the legacy fork-join model for comparison.

#include <iostream>

#include "lk23/lk23_program.h"
#include "sim/lk23_model.h"
#include "support/table.h"

int main() {
  using namespace orwl;

  struct Machine {
    const char* name;
    const char* spec;
  };
  const Machine machines[] = {
      {"laptop (1 socket x 8 cores)", "pack:1 core:8 pu:1"},
      {"workstation (2 x 16)", "pack:2 core:16 pu:1"},
      {"server (4 x 16, SMT-2)", "pack:4 core:16 pu:2"},
      {"paper SMP (24 x 8)", "pack:24 core:8 pu:1"},
      {"fat NUMA (8 x 24)", "pack:8 core:24 pu:1"},
  };

  std::cout << "What-if: LK23 (16384^2, 100 iterations), one block per "
               "core, three implementations\npredicted by the calibrated "
               "cost model on hypothetical machines\n\n";

  Table table({"machine", "cores", "OpenMP [s]", "ORWL NoBind [s]",
               "ORWL Bind [s]", "Bind payoff"});
  for (const Machine& m : machines) {
    const auto topo = topo::Topology::synthetic(m.spec);
    const sim::LinkCost cost = sim::LinkCost::defaults_for(topo);
    sim::Lk23SimSpec omp_spec;
    // Use physical cores (not SMT threads) as blocks, like the paper.
    int cores = topo.num_pus();
    if (!topo.arities().empty() && topo.arities().back() > 1)
      cores /= topo.arities().back();
    omp_spec.tasks = cores;
    const double omp =
        sim::simulate_lk23(sim::Lk23Impl::OpenMP, topo, cost, omp_spec)
            .total_seconds;

    const lk23::Spec spec =
        lk23::spec_for_tasks(omp_spec.matrix_n, omp_spec.iterations, cores);

    SimBackend nobind_be(topo.clone(), cost);
    const double nobind =
        lk23::run_lk23_program(spec, place::Policy::None, nobind_be).seconds;

    SimBackend bind_be(topo.clone(), cost);
    const double bind =
        lk23::run_lk23_program(spec, place::Policy::TreeMatch, bind_be)
            .seconds;

    const double payoff = std::min(omp, nobind) / bind;
    table.add_row({m.name, std::to_string(cores), fmt(omp, 1),
                   fmt(nobind, 1), fmt(bind, 1), fmt(payoff, 2) + "x"});
  }
  table.print(std::cout);
  std::cout << "\nReading: on one socket placement buys almost nothing "
               "(the paper's observation);\nthe payoff appears with the "
               "second socket and grows with NUMA depth.\n";
  return 0;
}
