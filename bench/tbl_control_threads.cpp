// Table C (ablation): the control-thread extension of Algorithm 1.
// Algorithm 1 picks, in order: hyperthread siblings -> spare cores ->
// unmanaged. This table quantifies each strategy on a lock-heavy workload
// (grant delivery goes through the control thread, so its distance from
// the compute thread and the unmanaged OS-scheduling penalty dominate).

#include <iostream>

#include "comm/patterns.h"
#include "sim/simulator.h"
#include "support/table.h"
#include "support/time.h"
#include "treematch/treematch.h"

namespace {

using namespace orwl;

double run_case(const topo::Topology& topo, const comm::CommMatrix& m,
                treematch::ControlStrategy strategy, int acquires) {
  treematch::Options opts;
  opts.control = strategy;
  const auto tm = treematch::map_threads(topo, m, opts);

  const sim::LinkCost cost = sim::LinkCost::defaults_for(topo);
  sim::Workload load;
  const int n = m.order();
  for (int i = 0; i < n; ++i)
    load.threads.push_back({1e6, 1e5, acquires});
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      if (m.at(i, j) > 0) load.edges.push_back({i, j, m.at(i, j)});
  load.iterations = 10;

  sim::Placement place;
  place.compute_pu = tm.compute_pu;
  place.control_pu = tm.control_pu;
  place.data_home_pu = tm.compute_pu;
  return sim::simulate(topo, cost, load, place).total_seconds / 10.0;
}

}  // namespace

int main() {
  std::cout << "Table C: control-thread strategies of Algorithm 1\n"
               "workload: 16 threads, stencil pattern, lock-heavy "
               "(acquires/iteration swept)\n\n";

  comm::StencilSpec st;
  st.blocks_x = 4;
  st.blocks_y = 4;
  st.block_rows = 512;
  st.block_cols = 512;
  const auto m = comm::stencil_matrix(st);

  // SMT machine: hyperthread strategy available (32 PUs, 16 cores).
  const auto topo_smt = topo::Topology::synthetic("pack:2 core:8 pu:2");
  // No SMT but twice the cores: spare-core strategy available.
  const auto topo_spare = topo::Topology::synthetic("pack:2 core:16 pu:1");

  Table table({"acquires/iter", "machine", "strategy", "time/iter"});
  for (int acquires : {10, 100, 1000, 10000}) {
    table.add_row({std::to_string(acquires), "2x8 cores, SMT-2",
                   "hyperthread",
                   orwl::format_seconds(run_case(
                       topo_smt, m, treematch::ControlStrategy::Hyperthread,
                       acquires))});
    table.add_row({std::to_string(acquires), "2x8 cores, SMT-2", "unmanaged",
                   orwl::format_seconds(run_case(
                       topo_smt, m, treematch::ControlStrategy::Unmanaged,
                       acquires))});
    table.add_row({std::to_string(acquires), "2x16 cores", "spare-cores",
                   orwl::format_seconds(run_case(
                       topo_spare, m, treematch::ControlStrategy::SpareCores,
                       acquires))});
    table.add_row({std::to_string(acquires), "2x16 cores", "unmanaged",
                   orwl::format_seconds(run_case(
                       topo_spare, m, treematch::ControlStrategy::Unmanaged,
                       acquires))});
  }
  table.print(std::cout);
  std::cout << "\nExpectation: managed strategies win and their advantage "
               "grows with lock traffic;\nhyperthread keeps the grant path "
               "on-core, spare-cores keeps it in-package.\n";
  return 0;
}
