// Table E (micro): cost of the mapping algorithm itself. The paper runs
// Algorithm 1 once at launch time; this measures how that launch cost
// scales with the number of threads, for stencil and random matrices and
// for the grouping engines.

#include <benchmark/benchmark.h>

#include <cmath>

#include "comm/patterns.h"
#include "treematch/treematch.h"

namespace {

using namespace orwl;

topo::Topology machine_for(int threads) {
  // Scale the machine with the thread count: packs of 8 cores.
  const int packs = std::max(1, threads / 8);
  return topo::Topology::synthetic("pack:" + std::to_string(packs) +
                                   " core:8 pu:1");
}

void BM_MapStencil(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const auto topo = machine_for(threads);
  comm::StencilSpec spec;
  const int side = static_cast<int>(std::sqrt(double(threads)));
  spec.blocks_x = threads / side;
  spec.blocks_y = side;
  spec.block_rows = 128;
  spec.block_cols = 128;
  const auto m = comm::stencil_matrix(spec);
  treematch::Options opts;
  opts.manage_control_threads = false;
  for (auto _ : state) {
    auto r = treematch::map_threads(topo, m, opts);
    benchmark::DoNotOptimize(r.compute_pu.data());
  }
  state.SetLabel(std::to_string(threads) + " threads");
}
BENCHMARK(BM_MapStencil)->Arg(16)->Arg(64)->Arg(192)->Arg(512)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

void BM_MapRandom(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const auto topo = machine_for(threads);
  const auto m = comm::random_matrix(threads, 0.1, 1000.0, 5);
  treematch::Options opts;
  opts.manage_control_threads = false;
  for (auto _ : state) {
    auto r = treematch::map_threads(topo, m, opts);
    benchmark::DoNotOptimize(r.compute_pu.data());
  }
}
BENCHMARK(BM_MapRandom)->Arg(16)->Arg(64)->Arg(192)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_MapOversubscribed(benchmark::State& state) {
  // The paper's LK23 case: ~9 operations per block on one PU per block.
  const int blocks = static_cast<int>(state.range(0));
  const auto topo = machine_for(blocks);
  const auto m = comm::clustered_matrix(blocks * 9, 9, 4096.0, 8.0);
  treematch::Options opts;
  opts.manage_control_threads = false;
  for (auto _ : state) {
    auto r = treematch::map_threads(topo, m, opts);
    benchmark::DoNotOptimize(r.compute_pu.data());
  }
  state.SetLabel(std::to_string(blocks * 9) + " ops on " +
                 std::to_string(topo.num_pus()) + " PUs");
}
BENCHMARK(BM_MapOversubscribed)->Arg(24)->Arg(96)->Arg(192)
    ->Unit(benchmark::kMillisecond);

void BM_GroupProcessesEngines(benchmark::State& state) {
  // Candidate-enumeration engine vs seeded engine on the same instance.
  const bool seeded = state.range(0) != 0;
  const auto m = comm::random_matrix(64, 0.3, 100.0, 9);
  const std::size_t limit = seeded ? 1 : 50000;
  for (auto _ : state) {
    auto g = treematch::group_processes(m, 4, limit);
    benchmark::DoNotOptimize(g.data());
  }
  state.SetLabel(seeded ? "seeded-greedy" : "candidate-list");
}
BENCHMARK(BM_GroupProcessesEngines)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
