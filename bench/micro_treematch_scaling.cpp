// Table E (micro): cost of the mapping algorithm itself. The paper runs
// Algorithm 1 once at launch time — and the online re-placer re-runs it at
// epoch boundaries — so this measures how that cost scales with the number
// of threads, for stencil and random matrices, the oversubscribed LK23
// shape, and the two grouping engines. Timing, repetition and JSON
// emission go through the shared harness (median/MAD over R repetitions
// after warmup), so the bench builds everywhere without google-benchmark
// and its output matches the BENCH_*.json layout of the other drivers.
//
//   micro_treematch_scaling [--reps R] [--warmup W] [--json PATH]

#include <cmath>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "comm/patterns.h"
#include "harness/bench.h"
#include "harness/json.h"
#include "harness/stats.h"
#include "support/table.h"
#include "support/time.h"
#include "treematch/treematch.h"

namespace {

using namespace orwl;

/// One micro scenario: a callable that performs `items` mapping runs and
/// returns the elapsed seconds.
struct Micro {
  std::string name;
  double items = 0;
  std::function<double()> once;
};

topo::Topology machine_for(int threads) {
  // Scale the machine with the thread count: packs of 8 cores.
  const int packs = std::max(1, threads / 8);
  return topo::Topology::synthetic("pack:" + std::to_string(packs) +
                                   " core:8 pu:1");
}

/// Time `repeats` map_threads() calls on (topo, m).
double time_maps(const topo::Topology& topo, const comm::CommMatrix& m,
                 int repeats) {
  treematch::Options opts;
  opts.manage_control_threads = false;
  WallTimer timer;
  for (int i = 0; i < repeats; ++i) {
    const treematch::Result r = treematch::map_threads(topo, m, opts);
    if (r.compute_pu.empty()) std::abort();  // keep the call observable
  }
  return timer.seconds();
}

Micro map_stencil(int threads) {
  const int repeats = threads >= 512 ? 1 : 5;
  return {"map_stencil/" + std::to_string(threads),
          static_cast<double>(repeats), [threads, repeats] {
            const topo::Topology topo = machine_for(threads);
            comm::StencilSpec spec;
            const int side =
                static_cast<int>(std::sqrt(static_cast<double>(threads)));
            spec.blocks_x = threads / side;
            spec.blocks_y = side;
            spec.block_rows = 128;
            spec.block_cols = 128;
            return time_maps(topo, comm::stencil_matrix(spec), repeats);
          }};
}

Micro map_random(int threads) {
  const int repeats = threads >= 512 ? 1 : 5;
  return {"map_random/" + std::to_string(threads),
          static_cast<double>(repeats), [threads, repeats] {
            const topo::Topology topo = machine_for(threads);
            return time_maps(topo, comm::random_matrix(threads, 0.1, 1000.0, 5),
                             repeats);
          }};
}

Micro map_oversubscribed(int blocks) {
  // The paper's LK23 case: ~9 operations per block on one PU per block.
  const int repeats = 3;
  return {"map_oversubscribed/" + std::to_string(blocks * 9) + "ops",
          static_cast<double>(repeats), [blocks, repeats] {
            const topo::Topology topo = machine_for(blocks);
            return time_maps(
                topo, comm::clustered_matrix(blocks * 9, 9, 4096.0, 8.0),
                repeats);
          }};
}

Micro group_engine(bool seeded) {
  // Candidate-enumeration engine vs seeded-greedy engine, same instance.
  const int repeats = seeded ? 50 : 5;
  return {std::string("group_processes/") +
              (seeded ? "seeded-greedy" : "candidate-list"),
          static_cast<double>(repeats), [seeded, repeats] {
            const comm::CommMatrix m = comm::random_matrix(64, 0.3, 100.0, 9);
            const std::size_t limit = seeded ? 1 : 50000;
            WallTimer timer;
            for (int i = 0; i < repeats; ++i) {
              const treematch::Groups g = treematch::group_processes(m, 4,
                                                                     limit);
              if (g.empty()) std::abort();
            }
            return timer.seconds();
          }};
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 3, warmup = 1;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--reps" && i + 1 < argc) reps = std::atoi(argv[++i]);
    else if (a == "--warmup" && i + 1 < argc) warmup = std::atoi(argv[++i]);
    else if (a == "--json" && i + 1 < argc) json_path = argv[++i];
    else {
      std::cerr << "usage: " << argv[0]
                << " [--reps R] [--warmup W] [--json PATH]\n";
      return 2;
    }
  }
  if (reps < 1 || warmup < 0) {
    std::cerr << "need --reps >= 1 and --warmup >= 0 (got reps=" << reps
              << ", warmup=" << warmup << ")\n";
    return 2;
  }

  std::vector<Micro> micros;
  for (int n : {16, 64, 192, 512, 1024}) micros.push_back(map_stencil(n));
  for (int n : {16, 64, 192, 512}) micros.push_back(map_random(n));
  for (int n : {24, 96, 192}) micros.push_back(map_oversubscribed(n));
  micros.push_back(group_engine(false));
  micros.push_back(group_engine(true));

  struct Row {
    Micro micro;
    harness::Stats stats;
  };
  std::vector<Row> rows;
  Table table({"benchmark", "time (median ±MAD)", "per map"});
  for (Micro& micro : micros) {
    const harness::Stats stats = harness::sample(warmup, reps, micro.once);
    table.add_row({micro.name,
                   format_seconds(stats.median) + " ±" +
                       format_seconds(stats.mad),
                   format_seconds(stats.median > 0
                                      ? stats.median / micro.items
                                      : 0.0)});
    rows.push_back({micro, stats});
  }
  table.print(std::cout);

  if (!json_path.empty()) {
    std::cout << '\n';
    const bool ok = harness::write_bench_file(
        json_path, "micro_treematch_scaling",
        [&](harness::JsonWriter& json) {
          json.member("repetitions", reps);
          json.member("warmup", warmup);
        },
        [&](harness::JsonWriter& json) {
          for (const Row& row : rows) {
            json.begin_object();
            json.member("name", row.micro.name);
            json.member("maps_per_sample", row.micro.items);
            json.member("seconds_median", row.stats.median);
            json.member("seconds_mad", row.stats.mad);
            json.member("seconds_min", row.stats.min);
            json.member("seconds_max", row.stats.max);
            json.member("seconds_per_map",
                        row.stats.median > 0
                            ? row.stats.median / row.micro.items
                            : 0.0);
            json.end_object();
          }
        });
    if (!ok) return 1;
  }
  return 0;
}
