// Figure 1 (simulated): processing time of the three Livermore Kernel 23
// implementations — OpenMP, ORWL NoBind, ORWL Bind — on the paper's machine
// (24 sockets x 8 cores = 192 cores), 16384x16384 doubles, 100 iterations.
//
// The two ORWL columns run the ONE shared program definition
// (lk23::define_lk23_program) on a SimBackend targeting the paper machine;
// fig1_livermore_real runs the identical definition on a RuntimeBackend —
// the comparison differs only in backend selection. The OpenMP column
// keeps the legacy fork-join model (a different programming model, not an
// ORWL program).
//
// The physical SMP is unavailable, so the run executes on the calibrated
// NUMA cost model (src/sim). Expected shape (paper): ORWL Bind reaches
// ~11 s at full machine, ~5x faster than OpenMP and ~2.8x faster than ORWL
// NoBind; the non-topology-aware versions stop improving beyond one or two
// sockets.

#include <cstdlib>
#include <iostream>

#include "lk23/lk23_program.h"
#include "sim/lk23_model.h"
#include "support/table.h"

int main() {
  using namespace orwl;
  const auto topo = topo::Topology::paper_machine();
  const sim::LinkCost cost = sim::LinkCost::defaults_for(topo);

  std::cout << "Figure 1 (simulated 24-socket x 8-core SMP, 192 cores)\n"
            << "Livermore Kernel 23, 16384x16384 doubles, 100 iterations\n"
            << "processing time in seconds (lower is better)\n\n";

  Table table({"cores", "OpenMP", "ORWL NoBind", "ORWL Bind",
               "Bind speedup vs OpenMP", "vs NoBind"});

  const int sweep[] = {8, 16, 32, 48, 64, 96, 128, 160, 192};
  double best_bind = 1e30, omp_at_best = 0, nobind_at_best = 0;
  for (int cores : sweep) {
    sim::Lk23SimSpec omp_spec;
    omp_spec.tasks = cores;
    const double omp =
        sim::simulate_lk23(sim::Lk23Impl::OpenMP, topo, cost, omp_spec)
            .total_seconds;

    const lk23::Spec spec =
        lk23::spec_for_tasks(omp_spec.matrix_n, omp_spec.iterations, cores);

    SimBackend nobind_be(topo.clone(), cost);
    const double nobind =
        lk23::run_lk23_program(spec, place::Policy::None, nobind_be).seconds;

    SimBackend bind_be(topo.clone(), cost);
    const double bind =
        lk23::run_lk23_program(spec, place::Policy::TreeMatch, bind_be)
            .seconds;

    if (bind < best_bind) {
      best_bind = bind;
      omp_at_best = omp;
      nobind_at_best = nobind;
    }
    table.add_row({std::to_string(cores), fmt(omp, 1), fmt(nobind, 1),
                   fmt(bind, 1), fmt(omp / bind, 1), fmt(nobind / bind, 1)});
  }
  table.print(std::cout);

  std::cout << "\nminimum ORWL Bind time: " << fmt(best_bind, 1)
            << " s  (paper: ~11 s)\n"
            << "speedup at best point:  " << fmt(omp_at_best / best_bind, 1)
            << "x vs OpenMP (paper: ~5x), "
            << fmt(nobind_at_best / best_bind, 1)
            << "x vs ORWL NoBind (paper: ~2.8x)\n";
  return 0;
}
