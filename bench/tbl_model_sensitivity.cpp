// Table F (ablation): sensitivity of the simulated Figure 1 to the cost
// model's free parameters. The calibration (DESIGN.md) fixes four knobs;
// this sweep perturbs each by 2x in both directions and reports the
// full-machine times and speedups. The claim being defended: the *ordering*
// (Bind < NoBind < OpenMP at 192 cores) is a property of the topology-aware
// placement, not of a lucky parameter choice.

#include <functional>
#include <iostream>

#include "sim/lk23_model.h"
#include "support/table.h"

namespace {

using namespace orwl;

struct Knob {
  const char* name;
  std::function<void(sim::LinkCost&, double)> scale;
};

}  // namespace

int main() {
  const auto topo = topo::Topology::paper_machine();
  sim::Lk23SimSpec spec;  // full paper configuration, 192 tasks

  const Knob knobs[] = {
      {"domain_bandwidth",
       [](sim::LinkCost& c, double f) { c.domain_bandwidth *= f; }},
      {"compute_rate",
       [](sim::LinkCost& c, double f) { c.compute_rate *= f; }},
      {"cross-package bw",
       [](sim::LinkCost& c, double f) { c.bandwidth[0] *= f; }},
      {"cross-package lat",
       [](sim::LinkCost& c, double f) { c.latency[0] *= f; }},
      {"unmanaged grant penalty",
       [](sim::LinkCost& c, double f) { c.unmanaged_grant_penalty *= f; }},
  };

  std::cout << "Table F: cost-model sensitivity at 192 cores (16384^2, 100 "
               "iterations)\nEach knob scaled x0.5 / x1 / x2.\n"
               "'Bind wins' (the paper's core claim) must hold everywhere; "
               "the NoBind-vs-OpenMP\nordering is expected to be "
               "calibration-sensitive (both lose for different reasons).\n\n";

  Table table({"knob", "scale", "OpenMP [s]", "NoBind [s]", "Bind [s]",
               "Bind vs OpenMP", "vs NoBind", "Bind wins", "full order"});
  bool bind_always_wins = true;
  for (const Knob& knob : knobs) {
    for (double f : {0.5, 1.0, 2.0}) {
      sim::LinkCost cost = sim::LinkCost::defaults_for(topo);
      knob.scale(cost, f);
      const double omp =
          sim::simulate_lk23(sim::Lk23Impl::OpenMP, topo, cost, spec)
              .total_seconds;
      const double nobind =
          sim::simulate_lk23(sim::Lk23Impl::OrwlNoBind, topo, cost, spec)
              .total_seconds;
      const double bind =
          sim::simulate_lk23(sim::Lk23Impl::OrwlBind, topo, cost, spec)
              .total_seconds;
      const bool wins = bind < nobind && bind < omp;
      bind_always_wins = bind_always_wins && wins;
      table.add_row({knob.name, fmt(f, 1), fmt(omp, 1), fmt(nobind, 1),
                     fmt(bind, 1), fmt(omp / bind, 1), fmt(nobind / bind, 1),
                     wins ? "ok" : "VIOLATED",
                     nobind < omp ? "NoBind<OpenMP" : "OpenMP<NoBind"});
    }
  }
  table.print(std::cout);
  std::cout << "\nBind wins under every perturbation: "
            << (bind_always_wins ? "yes" : "NO — investigate") << '\n';
  return bind_always_wins ? 0 : 1;
}
