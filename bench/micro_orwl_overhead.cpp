// Table D (micro): ORWL runtime overhead, measured natively with
// google-benchmark — FIFO queue operations, grant cycles in both control
// modes, contended queues, and shared-read grants.

#include <benchmark/benchmark.h>

#include "orwl/runtime.h"

namespace {

using namespace orwl;

// Raw queue cycle: insert -> (granted) -> release_and_renew, no threads.
void BM_QueueRenewCycle(benchmark::State& state) {
  int grants = 0;
  FifoQueue q([&](Request&) { ++grants; });
  Request slots[2];
  slots[0].mode = AccessMode::Write;
  slots[1].mode = AccessMode::Write;
  q.insert(slots[0]);
  int cur = 0;
  for (auto _ : state) {
    q.release_and_renew(slots[cur], slots[cur ^ 1]);
    cur ^= 1;
  }
  benchmark::DoNotOptimize(grants);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueueRenewCycle);

// End-to-end grant latency: two tasks alternate on one location; measures
// a full request->control->deliver->acquire->release cycle.
void BM_RuntimeAlternation(benchmark::State& state) {
  const bool per_task_control = state.range(0) != 0;
  const int rounds = 2000;
  for (auto _ : state) {
    RuntimeOptions opts;
    opts.control = per_task_control
                       ? RuntimeOptions::ControlMode::PerTask
                       : RuntimeOptions::ControlMode::Direct;
    opts.record_flows = false;
    Runtime rt(opts);
    const LocationId loc = rt.add_location(64);
    for (int i = 0; i < 2; ++i) {
      rt.add_task("t" + std::to_string(i), [i](TaskContext& ctx) {
        Handle& h = ctx.handle(i);
        for (int r = 0; r < rounds; ++r) {
          h.acquire();
          if (r + 1 == rounds)
            h.release();
          else
            h.release_and_renew();
        }
      });
    }
    rt.add_handle(0, loc, AccessMode::Write);
    rt.add_handle(1, loc, AccessMode::Write);
    rt.run();
  }
  state.SetItemsProcessed(state.iterations() * 2 * rounds);
  state.SetLabel(per_task_control ? "control-threads" : "direct");
}
BENCHMARK(BM_RuntimeAlternation)->Arg(0)->Arg(1)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Contended location: N writers round-robin.
void BM_RuntimeContention(benchmark::State& state) {
  const int writers = static_cast<int>(state.range(0));
  const int rounds = 500;
  for (auto _ : state) {
    RuntimeOptions opts;
    opts.control = RuntimeOptions::ControlMode::Direct;
    opts.record_flows = false;
    Runtime rt(opts);
    const LocationId loc = rt.add_location(64);
    for (int i = 0; i < writers; ++i) {
      rt.add_task("w" + std::to_string(i), [i](TaskContext& ctx) {
        Handle& h = ctx.handle(i);
        for (int r = 0; r < rounds; ++r) {
          h.acquire();
          if (r + 1 == rounds)
            h.release();
          else
            h.release_and_renew();
        }
      });
    }
    for (int i = 0; i < writers; ++i)
      rt.add_handle(i, loc, AccessMode::Write);
    rt.run();
  }
  state.SetItemsProcessed(state.iterations() * writers * rounds);
}
BENCHMARK(BM_RuntimeContention)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Shared reads: one writer, N readers per round.
void BM_RuntimeSharedReads(benchmark::State& state) {
  const int readers = static_cast<int>(state.range(0));
  const int rounds = 500;
  for (auto _ : state) {
    RuntimeOptions opts;
    opts.control = RuntimeOptions::ControlMode::Direct;
    opts.record_flows = false;
    Runtime rt(opts);
    const LocationId loc = rt.add_location(4096);
    rt.add_task("w", [](TaskContext& ctx) {
      Handle& h = ctx.handle(0);
      for (int r = 0; r < rounds; ++r) {
        h.acquire();
        if (r + 1 == rounds)
          h.release();
        else
          h.release_and_renew();
      }
    });
    for (int i = 0; i < readers; ++i) {
      rt.add_task("r" + std::to_string(i), [i](TaskContext& ctx) {
        Handle& h = ctx.handle(1 + i);
        for (int r = 0; r < rounds; ++r) {
          h.acquire();
          if (r + 1 == rounds)
            h.release();
          else
            h.release_and_renew();
        }
      });
    }
    rt.add_handle(0, loc, AccessMode::Write);
    for (int i = 0; i < readers; ++i)
      rt.add_handle(1 + i, loc, AccessMode::Read);
    rt.run();
  }
  state.SetItemsProcessed(state.iterations() * (readers + 1) * rounds);
}
BENCHMARK(BM_RuntimeSharedReads)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
