// Table D (micro): ORWL runtime overhead, measured natively — FIFO queue
// operations, grant cycles in both control modes and across wait
// strategies, contended queues, and shared-read grants. Timing, repetition
// and JSON emission go through the shared harness (median/MAD over R
// repetitions after warmup) instead of google-benchmark, so the bench
// builds everywhere and its output matches the BENCH_*.json layout of the
// other drivers.
//
// The wait-strategy sweep records block vs spin_then_park for both direct
// and control-thread grant delivery — the cases the lock-cheap core
// refactor is judged by (an uncontended grant is one atomic load; a
// contended one parks on the request state itself).
//
// The shared-read cases run twice — batched (default runtime behavior,
// historical unsuffixed names) and /nobatch (per-grant announcements) — so
// the recording itself shows what batching buys, and --calibration PATH
// writes the measured park/wake pair plus the batch-amortized announce
// cost into a host-fingerprinted sim calibration record
// (sim/calibration.h; activate with ORWL_CALIBRATION=PATH).
//
//   micro_orwl_overhead [--reps R] [--warmup W] [--json PATH]
//                       [--filter SUBSTRING] [--calibration PATH]

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "harness/bench.h"
#include "harness/json.h"
#include "harness/stats.h"
#include "obs/metrics.h"
#include "orwl/runtime.h"
#include "sim/calibration.h"
#include "sim/cost_model.h"
#include "support/table.h"
#include "support/time.h"
#include "sync/wait_strategy.h"
#include "sync/waiter.h"

namespace {

using namespace orwl;

/// One micro scenario: a callable that performs `items` operations and
/// returns the elapsed seconds.
struct Micro {
  std::string name;
  std::string wait;  ///< wait strategy in force ("" = not applicable)
  double items = 0;
  std::function<double()> once;
  /// Wait-length (spin rounds per slow-path acquire) histogram summed over
  /// every handle and repetition — the per-strategy distribution the JSON
  /// embeds next to the timings. Null for non-runtime micros.
  std::shared_ptr<obs::HistogramSnapshot> wait_rounds;
};

/// Fold every per-handle orwl.wait_rounds/* histogram of one run into the
/// micro's accumulator.
void merge_wait_rounds(const obs::RegistrySnapshot& snap,
                       obs::HistogramSnapshot& into) {
  for (const obs::HistogramSnapshot& h : snap.histograms) {
    if (h.name.rfind("orwl.wait_rounds", 0) != 0) continue;
    into.count += h.count;
    into.sum += h.sum;
    for (int i = 0; i < obs::HistogramSnapshot::kBuckets; ++i)
      into.buckets[static_cast<std::size_t>(i)] +=
          h.buckets[static_cast<std::size_t>(i)];
  }
}

// Raw queue cycle: insert -> (granted) -> release_and_renew, no threads.
Micro queue_renew_cycle() {
  const int cycles = 200000;
  return {"queue_renew_cycle", "", static_cast<double>(cycles), [cycles] {
            int grants = 0;
            GrantFn sink([&grants](Request&) { ++grants; });
            FifoQueue q(&sink);
            Request slots[2];
            slots[0].mode = AccessMode::Write;
            slots[1].mode = AccessMode::Write;
            q.insert(slots[0]);
            int cur = 0;
            WallTimer timer;
            for (int i = 0; i < cycles; ++i) {
              q.release_and_renew(slots[cur], slots[cur ^ 1]);
              cur ^= 1;
            }
            const double s = timer.seconds();
            (void)grants;
            return s;
          },
          nullptr};
}

// Park/wake calibration: two threads hand one 32-bit word back and forth
// through the shared sync:: waiter. Under block every handoff pays the
// futex park + wake pair; under spin none does (the yield-based handoff is
// what a spinning grant consumer pays instead). The per-handoff delta of
// the two cases is the park+wake cost the simulator's
// sim::LinkCost::park_latency/wake_latency fields model — main() derives
// it from the medians and records it in the JSON context.
Micro park_wake_handoff(sync::WaitStrategy ws) {
  const int handoffs = 20000;  // word transfers per rep (both directions)
  return {"park_wake_calibration/" + sync::to_string(ws),
          sync::to_string(ws), static_cast<double>(handoffs), [ws, handoffs] {
            std::atomic<std::uint32_t> word{0};
            const auto n = static_cast<std::uint32_t>(handoffs);
            // Peer: park at each even value, answer the odd one with the
            // next even — each loop turn consumes one handoff and makes
            // one.
            std::thread peer([&word, n, ws] {
              for (std::uint32_t v = 0; v < n; v += 2) {
                (void)sync::wait_while_equal(word, v, ws);
                word.store(v + 2, std::memory_order_release);
                sync::notify_one(word);
              }
            });
            WallTimer timer;
            // Main: make each odd value, park on it until the peer
            // answers.
            for (std::uint32_t v = 1; v < n; v += 2) {
              word.store(v, std::memory_order_release);
              sync::notify_one(word);
              (void)sync::wait_while_equal(word, v, ws);
            }
            const double s = timer.seconds();
            peer.join();
            return s;
          },
          nullptr};
}

/// N writer tasks round-robin on one location for `rounds` grants each.
double run_writers(RuntimeOptions::ControlMode mode, sync::WaitStrategy wait,
                   int writers, int rounds,
                   obs::HistogramSnapshot* wait_out = nullptr) {
  RuntimeOptions opts;
  opts.control = mode;
  opts.record_flows = false;
  opts.wait = wait;
  Runtime rt(opts);
  const LocationId loc = rt.add_location(64);
  for (int i = 0; i < writers; ++i) {
    rt.add_task("w" + std::to_string(i), [i, rounds](TaskContext& ctx) {
      Handle& h = ctx.handle(i);
      for (int r = 0; r < rounds; ++r) {
        h.acquire();
        if (r + 1 == rounds)
          h.release();
        else
          h.release_and_renew();
      }
    });
  }
  for (int i = 0; i < writers; ++i) rt.add_handle(i, loc, AccessMode::Write);
  WallTimer timer;
  rt.run();
  const double seconds = timer.seconds();
  if (wait_out != nullptr) merge_wait_rounds(rt.metrics().snapshot(), *wait_out);
  return seconds;
}

// End-to-end grant latency: two tasks alternate on one location; a full
// request->control->deliver->acquire->release cycle per item. The
// wait-strategy sweep emits one case per (delivery mode, strategy); the
// block cases keep their historical unsuffixed names so they stay
// comparable across recordings.
Micro runtime_alternation(bool per_task_control, sync::WaitStrategy wait,
                          bool suffix_strategy) {
  const int rounds = 2000;
  const auto mode = per_task_control ? RuntimeOptions::ControlMode::PerTask
                                     : RuntimeOptions::ControlMode::Direct;
  std::string name = std::string("runtime_alternation/") +
                     (per_task_control ? "control-threads" : "direct");
  if (suffix_strategy) name += "/" + sync::to_string(wait);
  auto hist = std::make_shared<obs::HistogramSnapshot>();
  return {std::move(name), sync::to_string(wait), 2.0 * rounds,
          [mode, wait, rounds, hist] {
            return run_writers(mode, wait, 2, rounds, hist.get());
          },
          hist};
}

Micro runtime_contention(int writers) {
  const int rounds = 500;
  auto hist = std::make_shared<obs::HistogramSnapshot>();
  return {"runtime_contention/" + std::to_string(writers),
          sync::to_string(sync::WaitStrategy::block()),
          static_cast<double>(writers) * rounds, [writers, rounds, hist] {
            return run_writers(RuntimeOptions::ControlMode::Direct,
                               sync::WaitStrategy::block(), writers, rounds,
                               hist.get());
          },
          hist};
}

// Shared reads: one writer, N readers per round. `batch` A/Bs the batched
// shared-read announcement (RuntimeOptions::batch_grants); the batched
// cases keep the historical unsuffixed names so recordings stay
// comparable, the per-grant path gets a /nobatch suffix.
Micro runtime_shared_reads(int readers, bool batch = true) {
  const int rounds = 500;
  auto hist = std::make_shared<obs::HistogramSnapshot>();
  return {"runtime_shared_reads/" + std::to_string(readers) +
              (batch ? "" : "/nobatch"),
          sync::to_string(sync::WaitStrategy::block()),
          static_cast<double>(readers + 1) * rounds,
          [readers, rounds, batch, hist] {
            RuntimeOptions opts;
            opts.control = RuntimeOptions::ControlMode::Direct;
            opts.record_flows = false;
            opts.batch_grants = batch;
            Runtime rt(opts);
            const LocationId loc = rt.add_location(4096);
            const auto body = [rounds](Handle& h) {
              for (int r = 0; r < rounds; ++r) {
                h.acquire();
                if (r + 1 == rounds)
                  h.release();
                else
                  h.release_and_renew();
              }
            };
            rt.add_task("w", [&body](TaskContext& ctx) {
              body(ctx.handle(0));
            });
            for (int i = 0; i < readers; ++i)
              rt.add_task("r" + std::to_string(i), [&body, i](TaskContext& ctx) {
                body(ctx.handle(1 + i));
              });
            rt.add_handle(0, loc, AccessMode::Write);
            for (int i = 0; i < readers; ++i)
              rt.add_handle(1 + i, loc, AccessMode::Read);
            WallTimer timer;
            rt.run();
            const double seconds = timer.seconds();
            merge_wait_rounds(rt.metrics().snapshot(), *hist);
            return seconds;
          },
          hist};
}

}  // namespace

int main(int argc, char** argv) {
  int reps = 5, warmup = 1;
  std::string json_path, filter, calibration_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--reps" && i + 1 < argc) reps = std::atoi(argv[++i]);
    else if (a == "--warmup" && i + 1 < argc) warmup = std::atoi(argv[++i]);
    else if (a == "--json" && i + 1 < argc) json_path = argv[++i];
    else if (a == "--filter" && i + 1 < argc) filter = argv[++i];
    else if (a == "--calibration" && i + 1 < argc)
      calibration_path = argv[++i];
    else {
      std::cerr << "usage: " << argv[0]
                << " [--reps R] [--warmup W] [--json PATH]"
                   " [--filter SUBSTRING] [--calibration PATH]\n";
      return 2;
    }
  }
  if (reps < 1 || warmup < 0) {
    std::cerr << "need --reps >= 1 and --warmup >= 0 (got reps=" << reps
              << ", warmup=" << warmup << ")\n";
    return 2;
  }

  const sync::WaitStrategy kBlock = sync::WaitStrategy::block();
  const sync::WaitStrategy kSpinThenPark =
      sync::WaitStrategy::spin_then_park();
  const sync::WaitStrategy kAuto = sync::WaitStrategy::spin_then_park_auto();

  std::vector<Micro> micros;
  micros.push_back(queue_renew_cycle());
  // Wait-strategy sweep: block (historical unsuffixed names) vs
  // spin_then_park (static and self-tuned), for both grant-delivery
  // modes.
  micros.push_back(runtime_alternation(false, kBlock, false));
  micros.push_back(runtime_alternation(true, kBlock, false));
  micros.push_back(runtime_alternation(false, kSpinThenPark, true));
  micros.push_back(runtime_alternation(true, kSpinThenPark, true));
  micros.push_back(runtime_alternation(false, kAuto, true));
  micros.push_back(runtime_alternation(true, kAuto, true));
  for (int n : {2, 4, 8}) micros.push_back(runtime_contention(n));
  for (int n : {2, 4, 8}) micros.push_back(runtime_shared_reads(n));
  // A/B: the same reader sweep with per-grant announcements, so every
  // recording carries its own evidence of what batching buys (and the
  // calibration record below can amortize the announce cost from it).
  for (int n : {2, 4, 8}) micros.push_back(runtime_shared_reads(n, false));
  // Park/wake calibration (block-vs-spin handoff delta; see
  // park_wake_handoff). Derived pair latency lands in the JSON context.
  micros.push_back(park_wake_handoff(kBlock));
  micros.push_back(park_wake_handoff(sync::WaitStrategy::spin()));

  struct Row {
    Micro micro;
    harness::Stats stats;
  };
  std::vector<Row> rows;
  Table table({"benchmark", "time (median ±MAD)", "items/s"});
  for (Micro& micro : micros) {
    if (!filter.empty() && micro.name.find(filter) == std::string::npos)
      continue;
    const harness::Stats stats = harness::sample(warmup, reps, micro.once);
    table.add_row({micro.name,
                   format_seconds(stats.median) + " ±" +
                       format_seconds(stats.mad),
                   fmt(stats.median > 0 ? micro.items / stats.median : 0.0,
                       0)});
    rows.push_back({micro, stats});
  }
  table.print(std::cout);

  if (!calibration_path.empty()) {
    double block_med = 0.0, spin_med = 0.0, pw_items = 0.0;
    double batch8 = 0.0, nobatch8 = 0.0, sr_items = 0.0;
    for (const Row& row : rows) {
      if (row.micro.name == "park_wake_calibration/block") {
        block_med = row.stats.median;
        pw_items = row.micro.items;
      } else if (row.micro.name == "park_wake_calibration/spin") {
        spin_med = row.stats.median;
      } else if (row.micro.name == "runtime_shared_reads/8") {
        batch8 = row.stats.median;
        sr_items = row.micro.items;
      } else if (row.micro.name == "runtime_shared_reads/8/nobatch") {
        nobatch8 = row.stats.median;
      }
    }
    sim::CalibrationRecord rec;
    rec.host = sim::host_fingerprint();
    if (pw_items > 0) {
      const double delta = block_med - spin_med;
      rec.park_wake_pair_seconds = delta > 0 ? delta / pw_items : 0.0;
    }
    // Batch-amortized announce cost: the per-grant saving the /8 A/B pair
    // measured, taken off the model's per-grant overhead and floored at a
    // quarter of it (announcement and queue work remain even in a batch).
    if (sr_items > 0 && batch8 > 0 && nobatch8 > 0) {
      const sim::LinkCost model_defaults;
      const double saving = std::max(0.0, (nobatch8 - batch8) / sr_items);
      rec.grant_batch_overhead_seconds =
          std::max(model_defaults.grant_overhead - saving,
                   0.25 * model_defaults.grant_overhead);
    }
    std::ofstream cal(calibration_path);
    cal << sim::format_calibration(rec);
    if (!cal) {
      std::cerr << "cannot write calibration record " << calibration_path
                << "\n";
      return 1;
    }
    std::cout << "calibration record -> " << calibration_path << "\n";
  }

  if (!json_path.empty()) {
    std::cout << '\n';
    const bool ok = harness::write_bench_file(
        json_path, "micro_orwl_overhead",
        [&](harness::JsonWriter& json) {
          json.member("repetitions", reps);
          json.member("warmup", warmup);
          // Derived park+wake pair cost: what one blocking handoff pays
          // over a spinning one, per item — the measurement behind
          // sim::LinkCost::park_latency/wake_latency.
          double block_med = 0.0, spin_med = 0.0, items = 0.0;
          for (const Row& row : rows) {
            if (row.micro.name == "park_wake_calibration/block") {
              block_med = row.stats.median;
              items = row.micro.items;
            } else if (row.micro.name == "park_wake_calibration/spin") {
              spin_med = row.stats.median;
            }
          }
          if (items > 0) {
            const double delta = block_med - spin_med;
            json.member("park_wake_pair_seconds",
                        delta > 0 ? delta / items : 0.0);
          }
        },
        [&](harness::JsonWriter& json) {
          for (const Row& row : rows) {
            json.begin_object();
            json.member("name", row.micro.name);
            if (!row.micro.wait.empty())
              json.member("wait_strategy", row.micro.wait);
            json.member("items", row.micro.items);
            json.member("seconds_median", row.stats.median);
            json.member("seconds_mad", row.stats.mad);
            json.member("seconds_min", row.stats.min);
            json.member("seconds_max", row.stats.max);
            json.member("items_per_second",
                        row.stats.median > 0
                            ? row.micro.items / row.stats.median
                            : 0.0);
            // Wait-length distribution (spin rounds per slow-path
            // acquire), all handles and repetitions pooled — what the
            // wait-strategy sweep is actually about.
            if (row.micro.wait_rounds && !row.micro.wait_rounds->empty())
              harness::write_histogram(json, "wait_rounds",
                                       *row.micro.wait_rounds);
            json.end_object();
          }
        });
    if (!ok) return 1;
  }
  return 0;
}
