// Table B (ablation): the oversubscription extension of Algorithm 1.
// When tasks > computing resources, the extension adds a virtual topology
// level so affine threads share a PU; the baseline wraps threads around
// PUs in index order (compact modulo). Reports hop-bytes and simulated
// time for task/PU ratios 1..8.

#include <iostream>

#include "comm/metrics.h"
#include "comm/patterns.h"
#include "sim/simulator.h"
#include "support/table.h"
#include "support/time.h"
#include "treematch/treematch.h"

namespace {

using namespace orwl;

double sim_time(const topo::Topology& topo, const comm::CommMatrix& m,
                const comm::Mapping& mapping) {
  const sim::LinkCost cost = sim::LinkCost::defaults_for(topo);
  sim::Workload load;
  for (int i = 0; i < m.order(); ++i) load.threads.push_back({1e6, 1e5, 0});
  for (int i = 0; i < m.order(); ++i)
    for (int j = i + 1; j < m.order(); ++j)
      if (m.at(i, j) > 0) load.edges.push_back({i, j, m.at(i, j)});
  sim::Placement place;
  place.compute_pu = mapping;
  place.control_pu.assign(static_cast<std::size_t>(m.order()), -1);
  place.data_home_pu = mapping;
  return sim::simulate(topo, cost, load, place).total_seconds;
}

}  // namespace

int main() {
  const auto topo = topo::Topology::synthetic("pack:4 core:8 pu:1");
  const int pus = topo.num_pus();
  std::cout << "Table B: oversubscription extension (topology pack:4 "
               "core:8 pu:1, "
            << pus << " PUs)\nworkload: clustered threads (cluster size = "
               "ratio) — affine threads should share a PU\n\n";

  Table table({"tasks/PU", "threads", "policy", "hop-bytes", "max/PU",
               "sim time/iter"});
  for (int ratio : {1, 2, 4, 8}) {
    const int threads = pus * ratio;
    const auto m = comm::clustered_matrix(threads, ratio, 4096.0, 8.0);

    treematch::Options opts;
    opts.manage_control_threads = false;
    const auto tm = treematch::map_threads(topo, m, opts);
    comm::Mapping wrap(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t)
      wrap[static_cast<std::size_t>(t)] = t % pus;

    for (const auto& [name, mapping] :
         {std::pair<const char*, const comm::Mapping*>{"treematch+virt",
                                                       &tm.compute_pu},
          std::pair<const char*, const comm::Mapping*>{"compact-wrap",
                                                       &wrap}}) {
      std::vector<int> load_per_pu(static_cast<std::size_t>(pus), 0);
      for (int pu : *mapping)
        if (pu >= 0) load_per_pu[static_cast<std::size_t>(pu)]++;
      int max_load = 0;
      for (int l : load_per_pu) max_load = std::max(max_load, l);
      table.add_row({std::to_string(ratio), std::to_string(threads), name,
                     orwl::fmt(comm::hop_bytes(topo, m, *mapping) / 1024.0, 1),
                     std::to_string(max_load),
                     orwl::format_seconds(sim_time(topo, m, *mapping))});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpectation: treematch+virt keeps each PU's load at the "
               "ratio while co-locating\neach affinity cluster, so "
               "hop-bytes stays near zero; compact-wrap splits clusters\n"
               "across the machine.\n";
  return 0;
}
