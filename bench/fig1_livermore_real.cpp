// Figure 1 (native): the same three Livermore Kernel 23 implementations
// executed for real on the host machine (scaled problem — the host has no
// 192-core SMP). This validates the runtime and the binding machinery; the
// full-scale shape is reproduced by fig1_livermore_sim.
//
// The two ORWL columns run the ONE shared program definition
// (lk23::define_lk23_program) on a RuntimeBackend; fig1_livermore_sim runs
// the identical definition on a SimBackend — the comparison differs only
// in backend selection.
//
// Environment knobs:
//   ORWL_BENCH_N      matrix size (default 3072; must be divisible by the
//                     block grids of the sweep)
//   ORWL_BENCH_ITERS  iterations (default 20)

#include <cstdlib>
#include <iostream>

#include "lk23/forkjoin_impl.h"
#include "lk23/lk23_program.h"
#include "sim/lk23_model.h"
#include "support/table.h"

namespace {

int env_int(const char* name, int fallback) {
  if (const char* v = std::getenv(name)) return std::atoi(v);
  return fallback;
}

}  // namespace

int main() {
  using namespace orwl;
  const auto topo = topo::Topology::host();
  const int host_pus = topo.num_pus();
  const long n = env_int("ORWL_BENCH_N", 3072);
  const int iters = env_int("ORWL_BENCH_ITERS", 20);

  std::cout << "Figure 1 (native, scaled): LK23 " << n << "x" << n << ", "
            << iters << " iterations, host with " << host_pus << " PUs\n"
            << "OpenMP-equiv = fork-join pool, unbound; ORWL NoBind = ORWL "
               "runtime, no placement;\nORWL Bind = ORWL runtime + "
               "Algorithm 1 (TreeMatch placement)\n\n";

  Table table({"tasks", "ops(threads)", "OpenMP-equiv [s]",
               "ORWL NoBind [s]", "ORWL Bind [s]", "Bind vs OpenMP",
               "Bind vs NoBind"});

  for (int tasks : {1, 2, 4, 6, 8, 12, 16, 24}) {
    if (tasks > 2 * host_pus) break;
    const auto [bx, by] = sim::block_grid(tasks);
    if (n % bx != 0 || n % by != 0) continue;
    lk23::Spec spec;
    spec.n = n;
    spec.iterations = iters;
    spec.bx = bx;
    spec.by = by;

    const auto fj = lk23::run_forkjoin(spec, tasks);

    RuntimeBackend nobind_be;
    const RunReport nobind =
        lk23::run_lk23_program(spec, place::Policy::None, nobind_be);

    RuntimeBackend bind_be;
    lk23::ProgramDef def;
    const RunReport bind =
        lk23::run_lk23_program(spec, place::Policy::TreeMatch, bind_be, &def);

    table.add_row({std::to_string(tasks), std::to_string(def.num_tasks),
                   fmt(fj.seconds, 3), fmt(nobind.seconds, 3),
                   fmt(bind.seconds, 3), fmt(fj.seconds / bind.seconds, 2),
                   fmt(nobind.seconds / bind.seconds, 2)});
  }
  table.print(std::cout);
  std::cout << "\nNote: on a single-package host the paper's cross-socket "
               "effects cannot appear;\nsee fig1_livermore_sim for the "
               "192-core reproduction.\n";
  return 0;
}
