// Table A (ablation): mapping quality of the placement policies across
// workload patterns and topologies. Reports hop-bytes (lower = better
// locality), the fraction of traffic kept inside a package, and the
// simulated iteration time of the resulting placement. The simulated
// exchange timing and the JSON emission come from the shared harness
// instead of a hand-rolled sim::Workload loop.
//
//   tbl_mapping_quality [--json PATH]

#include <cmath>
#include <iostream>

#include "comm/metrics.h"
#include "comm/patterns.h"
#include "harness/bench.h"
#include "harness/json.h"
#include "place/placement.h"
#include "support/table.h"
#include "support/time.h"

namespace {

using namespace orwl;

struct Pattern {
  const char* name;
  comm::CommMatrix matrix;
};

struct Row {
  std::string topo;
  std::string pattern;
  place::Policy policy;
  double hop_bytes = 0.0;
  double package_local = 0.0;
  double sim_seconds = 0.0;
  double vs_treematch = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) json_path = argv[++i];
    else {
      std::cerr << "usage: " << argv[0] << " [--json PATH]\n";
      return 2;
    }
  }

  const char* topo_specs[] = {"pack:4 core:8 pu:1", "pack:24 core:8 pu:1"};
  std::vector<Row> rows;

  for (const char* spec : topo_specs) {
    const auto topo = topo::Topology::synthetic(spec);
    const int p = topo.num_pus();
    std::cout << "=== topology " << spec << " (" << p << " PUs) ===\n\n";

    std::vector<Pattern> patterns;
    {
      comm::StencilSpec st;
      const int side = static_cast<int>(std::sqrt(double(p)));
      st.blocks_x = p / side;
      st.blocks_y = side;
      st.block_rows = 256;
      st.block_cols = 256;
      patterns.push_back({"stencil", comm::stencil_matrix(st)});
      patterns.push_back({"ring", comm::ring_matrix(p, 4096.0)});
      patterns.push_back(
          {"clustered", comm::clustered_matrix(p, 8, 4096.0, 16.0)});
      patterns.push_back({"random", comm::random_matrix(p, 0.1, 4096.0, 3)});
    }

    for (const auto& pat : patterns) {
      Table table({"policy", "hop-bytes", "package-local %", "sim time/iter",
                   "vs treematch"});
      const int pkg_depth = 1;
      double tm_time = 0.0;
      for (place::Policy policy :
           {place::Policy::TreeMatch, place::Policy::Compact,
            place::Policy::Scatter, place::Policy::Random}) {
        treematch::Options tm_opts;
        tm_opts.manage_control_threads = false;
        const place::Plan plan =
            place::compute_plan(policy, topo, pat.matrix, tm_opts);
        Row row;
        row.topo = spec;
        row.pattern = pat.name;
        row.policy = policy;
        row.hop_bytes = comm::hop_bytes(topo, pat.matrix, plan.compute_pu);
        row.package_local = comm::locality_fraction(
            topo, pat.matrix, plan.compute_pu, pkg_depth);
        row.sim_seconds =
            harness::simulated_exchange_seconds(topo, pat.matrix,
                                                plan.compute_pu);
        if (policy == place::Policy::TreeMatch) tm_time = row.sim_seconds;
        row.vs_treematch = tm_time > 0.0 ? row.sim_seconds / tm_time : 0.0;
        table.add_row({place::to_string(policy),
                       orwl::fmt(row.hop_bytes / 1024.0, 1),
                       orwl::fmt(100.0 * row.package_local, 1),
                       orwl::format_seconds(row.sim_seconds),
                       orwl::fmt(row.vs_treematch, 2)});
        rows.push_back(row);
      }
      std::cout << "--- pattern: " << pat.name << " ---\n";
      table.print(std::cout);
      std::cout << '\n';
    }
  }

  if (!json_path.empty() &&
      !harness::write_bench_file(
          json_path, "tbl_mapping_quality", nullptr,
          [&](harness::JsonWriter& json) {
            for (const Row& row : rows) {
              json.begin_object();
              json.member("name", row.topo + "/" + row.pattern + "/" +
                                      place::to_string(row.policy));
              json.member("topology", row.topo);
              json.member("pattern", row.pattern);
              json.member("policy", place::to_string(row.policy));
              json.member("hop_bytes", row.hop_bytes);
              json.member("package_local_fraction", row.package_local);
              json.member("sim_seconds_per_iteration", row.sim_seconds);
              json.member("vs_treematch", row.vs_treematch);
              json.end_object();
            }
          }))
    return 1;
  return 0;
}
