// Table A (ablation): mapping quality of the placement policies across
// workload patterns and topologies. Reports hop-bytes (lower = better
// locality), the fraction of traffic kept inside a package, and the
// simulated iteration time of the resulting placement.

#include <cmath>
#include <iostream>

#include "comm/metrics.h"
#include "comm/patterns.h"
#include "place/placement.h"
#include "sim/simulator.h"
#include "support/table.h"
#include "support/time.h"

namespace {

using namespace orwl;

struct Pattern {
  const char* name;
  comm::CommMatrix matrix;
};

// Simulate one iteration of a communication-bound exchange workload under
// a mapping (light compute, 1024 exchanges per iteration so placement
// differences are visible in the time column).
double sim_time(const topo::Topology& topo, const comm::CommMatrix& m,
                const comm::Mapping& mapping) {
  const sim::LinkCost cost = sim::LinkCost::defaults_for(topo);
  sim::Workload load;
  const int n = m.order();
  for (int i = 0; i < n; ++i) load.threads.push_back({1e5, 1e5, 0});
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      if (m.at(i, j) > 0)
        load.edges.push_back({i, j, 1024.0 * m.at(i, j)});
  sim::Placement place;
  place.compute_pu = mapping;
  place.control_pu.assign(static_cast<std::size_t>(n), -1);
  place.data_home_pu = mapping;
  for (auto& pu : place.data_home_pu)
    if (pu < 0) pu = 0;
  // Unbound entries would be random; pin them for a deterministic table.
  for (auto& pu : place.compute_pu)
    if (pu < 0) pu = 0;
  return sim::simulate(topo, cost, load, place).total_seconds;
}

}  // namespace

int main() {
  const char* topo_specs[] = {"pack:4 core:8 pu:1", "pack:24 core:8 pu:1"};

  for (const char* spec : topo_specs) {
    const auto topo = topo::Topology::synthetic(spec);
    const int p = topo.num_pus();
    std::cout << "=== topology " << spec << " (" << p << " PUs) ===\n\n";

    std::vector<Pattern> patterns;
    {
      comm::StencilSpec st;
      const int side = static_cast<int>(std::sqrt(double(p)));
      st.blocks_x = p / side;
      st.blocks_y = side;
      st.block_rows = 256;
      st.block_cols = 256;
      patterns.push_back({"stencil", comm::stencil_matrix(st)});
      patterns.push_back({"ring", comm::ring_matrix(p, 4096.0)});
      patterns.push_back(
          {"clustered", comm::clustered_matrix(p, 8, 4096.0, 16.0)});
      patterns.push_back({"random", comm::random_matrix(p, 0.1, 4096.0, 3)});
    }

    for (const auto& pat : patterns) {
      Table table({"policy", "hop-bytes", "package-local %", "sim time/iter",
                   "vs treematch"});
      const int pkg_depth = 1;
      double tm_time = 0.0;
      std::vector<std::pair<place::Policy, std::string>> rows;
      for (place::Policy policy :
           {place::Policy::TreeMatch, place::Policy::Compact,
            place::Policy::Scatter, place::Policy::Random}) {
        treematch::Options tm_opts;
        tm_opts.manage_control_threads = false;
        const place::Plan plan =
            place::compute_plan(policy, topo, pat.matrix, tm_opts);
        const double hb = comm::hop_bytes(topo, pat.matrix, plan.compute_pu);
        const double local = comm::locality_fraction(
            topo, pat.matrix, plan.compute_pu, pkg_depth);
        const double t = sim_time(topo, pat.matrix, plan.compute_pu);
        if (policy == place::Policy::TreeMatch) tm_time = t;
        table.add_row({place::to_string(policy), orwl::fmt(hb / 1024.0, 1),
                       orwl::fmt(100.0 * local, 1),
                       orwl::format_seconds(t),
                       orwl::fmt(t / tm_time, 2)});
      }
      std::cout << "--- pattern: " << pat.name << " ---\n";
      table.print(std::cout);
      std::cout << '\n';
    }
  }
  return 0;
}
